"""Tests for the MNA analyses: operating point, DC sweep, transient, waveforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.spice import (
    AnalysisError,
    Circuit,
    DiodeModel,
    PiecewiseLinearWaveform,
    SolverOptions,
    TransientOptions,
    Waveform,
    dc_sweep,
    operating_point,
    propagation_delay,
    transient,
)
from repro.spice.analysis.mna import MnaSystem
from repro.spice.errors import CircuitError


def _divider() -> Circuit:
    c = Circuit("divider")
    c.add_voltage_source("vin", "a", "0", dc=3.0)
    c.add_resistor("r1", "a", "b", 1000.0)
    c.add_resistor("r2", "b", "0", 2000.0)
    return c


def _inverter(tech) -> Circuit:
    c = Circuit("inv")
    c.add_voltage_source("vdd", "vdd", "0", dc=tech.vdd)
    c.add_voltage_source("vin", "in", "0", dc=0.0)
    c.add_mosfet("mp", "out", "in", "vdd", "vdd", tech.pmos, tech.pmos_width, tech.length)
    c.add_mosfet("mn", "out", "in", "0", "0", tech.nmos, tech.nmos_width, tech.length)
    return c


class TestMnaSystem:
    def test_node_indexing(self):
        system = MnaSystem(_divider())
        assert system.num_nodes == 2
        assert system.num_branches == 1
        assert system.node_index("0") == -1

    def test_unknown_node_raises(self):
        system = MnaSystem(_divider())
        with pytest.raises(CircuitError):
            system.node_index("zzz")

    def test_empty_circuit_rejected(self):
        with pytest.raises(CircuitError):
            MnaSystem(Circuit("empty"))


class TestOperatingPoint:
    def test_resistive_divider(self):
        op = operating_point(_divider())
        assert op.voltage("b") == pytest.approx(2.0, rel=1e-6)
        assert op.voltage("a") == pytest.approx(3.0, rel=1e-6)

    def test_source_current(self):
        op = operating_point(_divider())
        assert op.current("vin") == pytest.approx(-1e-3, rel=1e-6)

    def test_diode_resistor(self):
        c = Circuit("d")
        c.add_voltage_source("v1", "a", "0", dc=3.3)
        c.add_resistor("r", "a", "d", 1000.0)
        c.add_diode("d1", "d", "0", DiodeModel(saturation_current=1e-14))
        op = operating_point(c)
        assert 0.55 < op.voltage("d") < 0.8

    def test_cmos_inverter_levels(self, tech):
        c = _inverter(tech)
        op_low = operating_point(c)
        assert op_low.voltage("out") == pytest.approx(tech.vdd, abs=1e-3)
        c["vin"].dc = tech.vdd
        op_high = operating_point(c)
        assert op_high.voltage("out") == pytest.approx(0.0, abs=1e-3)

    def test_initial_guess_accepted(self):
        op = operating_point(_divider(), initial_guess={"b": 2.0})
        assert op.voltage("b") == pytest.approx(2.0, rel=1e-6)

    def test_kcl_residual_is_small(self, tech):
        """The solution satisfies KCL at internal nodes (flat rebuild check)."""
        c = _inverter(tech)
        c["vin"].dc = 1.5
        op = operating_point(c)
        # Re-evaluate device currents at the solved voltages.
        v = {n: op.voltage(n) for n in c.nodes()}
        v["0"] = 0.0
        mn, mp = c["mn"], c["mp"]
        i_n = mn.drain_current(v["out"], v["in"], 0.0, 0.0)
        i_p = mp.drain_current(v["out"], v["in"], v["vdd"], v["vdd"])
        assert i_n + i_p == pytest.approx(0.0, abs=1e-6)

    def test_gmin_stepping_discards_non_finite_rung(self, monkeypatch):
        """Regression: a rung that diverges to NaN must not poison the next
        rung's starting point (and the dead converged-branch is gone)."""
        from repro.spice.analysis import solver as solver_module
        from repro.spice.elements import StampContext

        system = MnaSystem(_divider())
        ctx = StampContext(mode="dc", gmin=1e-12)
        real_newton = solver_module.newton_solve
        starts = []

        def newton_spy(system_, ctx_, x0, options=None):
            starts.append(np.array(x0, copy=True))
            result = real_newton(system_, ctx_, x0, options)
            if ctx_.gmin == 1e-4:  # poison exactly one rung
                return solver_module.SolveResult(
                    x=np.full_like(result.x, np.nan), converged=False, iterations=1
                )
            return result

        monkeypatch.setattr(solver_module, "newton_solve", newton_spy)
        result = solver_module.solve_with_gmin_stepping(
            system, ctx, system.initial_guess(), gmin_ladder=(1e-2, 1e-4, 1e-6)
        )
        assert result.converged
        assert np.all(np.isfinite(result.x))
        # The rung after the poisoned one restarted from finite values.
        assert all(np.all(np.isfinite(x0)) for x0 in starts[2:])


class TestDcSweep:
    def test_inverter_vtc_monotone_decreasing(self, tech):
        c = _inverter(tech)
        result = dc_sweep(c, "vin", np.linspace(0.0, tech.vdd, 23), record_nodes=["out"])
        out = result.voltages["out"]
        assert out[0] == pytest.approx(tech.vdd, abs=5e-3)
        assert out[-1] == pytest.approx(0.0, abs=5e-3)
        assert all(b <= a + 1e-6 for a, b in zip(out, out[1:]))

    def test_sweep_restores_source_value(self, tech):
        c = _inverter(tech)
        original = c["vin"].dc
        dc_sweep(c, "vin", [0.0, 1.0, 2.0], record_nodes=["out"])
        assert c["vin"].dc == original

    def test_sweep_requires_voltage_source(self, tech):
        c = _inverter(tech)
        with pytest.raises(AnalysisError):
            dc_sweep(c, "mn", [0.0, 1.0])

    def test_sweep_rejects_empty_values(self, tech):
        c = _inverter(tech)
        with pytest.raises(AnalysisError):
            dc_sweep(c, "vin", [])

    def test_transfer_curve_lookup(self, tech):
        c = _inverter(tech)
        result = dc_sweep(c, "vin", np.linspace(0.0, tech.vdd, 12), record_nodes=["out"])
        curve = result.transfer_curve("out")
        assert curve.at(0.0) == pytest.approx(tech.vdd, abs=5e-3)
        with pytest.raises(AnalysisError):
            result.transfer_curve("nope")


class TestTransient:
    def test_rc_charging(self):
        c = Circuit("rc")
        wf = PiecewiseLinearWaveform([(0.0, 0.0), (1e-12, 1.0)])
        c.add_voltage_source("v1", "a", "0", waveform=wf)
        c.add_resistor("r1", "a", "b", 1000.0)
        c.add_capacitor("c1", "b", "0", 1e-12)
        tau = 1e-9
        result = transient(c, 5 * tau, 10e-12, record_nodes=["b"])
        wave = result.waveform("b")
        assert wave.at(tau) == pytest.approx(1.0 - np.exp(-1.0), rel=0.05)
        assert wave.final_value() == pytest.approx(1.0, rel=0.01)

    def test_rc_trapezoidal_matches_analytic(self):
        c = Circuit("rc")
        wf = PiecewiseLinearWaveform([(0.0, 0.0), (1e-12, 1.0)])
        c.add_voltage_source("v1", "a", "0", waveform=wf)
        c.add_resistor("r1", "a", "b", 1000.0)
        c.add_capacitor("c1", "b", "0", 1e-12)
        options = TransientOptions(method="trapezoidal")
        result = transient(c, 3e-9, 10e-12, options=options, record_nodes=["b"])
        assert result.waveform("b").at(1e-9) == pytest.approx(1.0 - np.exp(-1.0), rel=0.03)

    def test_inverter_switching(self, tech):
        c = _inverter(tech)
        c.remove("vin")
        wf = PiecewiseLinearWaveform([(0, 0.0), (1e-9, 0.0), (1.05e-9, tech.vdd)])
        c.add_voltage_source("vin", "in", "0", waveform=wf)
        c.add_capacitor("cl", "out", "0", 10e-15)
        result = transient(c, 2.5e-9, 5e-12, record_nodes=["in", "out"])
        out = result.waveform("out")
        assert out.initial_value() == pytest.approx(tech.vdd, abs=0.05)
        assert out.final_value() == pytest.approx(0.0, abs=0.05)
        delay = propagation_delay(result.waveform("in"), out, tech.vdd / 2, "rising", "falling")
        assert delay is not None and 1e-12 < delay < 300e-12

    def test_invalid_arguments(self, tech):
        c = _inverter(tech)
        with pytest.raises(AnalysisError):
            transient(c, -1e-9, 1e-12)
        with pytest.raises(AnalysisError):
            transient(c, 1e-9, 2e-9)

    def test_record_subset(self, tech):
        c = _inverter(tech)
        result = transient(c, 0.1e-9, 10e-12, record_nodes=["out"])
        assert result.nodes == ["out"]
        with pytest.raises(AnalysisError):
            result.waveform("in")

    def test_decimation_reduces_samples(self, tech):
        c = _inverter(tech)
        dense = transient(c, 0.2e-9, 5e-12, record_nodes=["out"])
        sparse = transient(
            c, 0.2e-9, 5e-12, options=TransientOptions(decimation=4), record_nodes=["out"]
        )
        assert len(sparse.time) < len(dense.time)


class TestWaveform:
    def test_crossing_detection(self):
        w = Waveform(np.array([0.0, 1.0, 2.0, 3.0]), np.array([0.0, 1.0, 0.0, 1.0]))
        assert w.crossings(0.5, "rising") == pytest.approx([0.5, 2.5])
        assert w.crossings(0.5, "falling") == pytest.approx([1.5])
        assert w.crossings(0.5) == pytest.approx([0.5, 1.5, 2.5])

    def test_first_crossing_after(self):
        w = Waveform(np.array([0.0, 1.0, 2.0, 3.0]), np.array([0.0, 1.0, 0.0, 1.0]))
        assert w.first_crossing(0.5, "rising", after=1.0) == pytest.approx(2.5)
        assert w.first_crossing(2.0, "rising") is None

    def test_interpolation_and_slice(self):
        w = Waveform(np.array([0.0, 1.0, 2.0]), np.array([0.0, 2.0, 4.0]))
        assert w.at(0.5) == pytest.approx(1.0)
        piece = w.slice(0.5, 1.5)
        assert piece.t_start == pytest.approx(0.5)
        assert piece.t_stop == pytest.approx(1.5)
        assert piece.initial_value() == pytest.approx(1.0)

    def test_rise_and_fall_times(self):
        t = np.linspace(0.0, 1.0, 101)
        w = Waveform(t, t.copy())
        rise = w.rise_time(0.1, 0.9)
        assert rise == pytest.approx(0.8, rel=1e-3)
        falling = Waveform(t, 1.0 - t)
        assert falling.fall_time(0.9, 0.1) == pytest.approx(0.8, rel=1e-3)

    def test_propagation_delay_none_when_stuck(self):
        t = np.linspace(0.0, 1.0, 11)
        inp = Waveform(t, t)
        flat = Waveform(t, np.zeros_like(t))
        assert propagation_delay(inp, flat, 0.5, "rising", "rising") is None

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0, 1.0]), np.array([0.0]))

    def test_non_monotonic_time_rejected(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0, 2.0, 1.0]), np.array([0.0, 1.0, 2.0]))

    def test_shifted(self):
        w = Waveform(np.array([0.0, 1.0]), np.array([1.0, 2.0]))
        assert w.shifted(0.5).t_start == pytest.approx(0.5)


class TestSolverRobustness:
    def test_breakdown_network_converges(self, tech):
        """The OBD diode network with extreme parameters still solves."""
        c = _inverter(tech)
        c["vin"].dc = tech.vdd
        c.add_resistor("obd_r", "in", "x", 0.05)
        c.add_diode("obd_d1", "x", "0", DiodeModel(saturation_current=2e-24))
        c.add_diode("obd_d2", "x", "out", DiodeModel(saturation_current=2e-24))
        c.add_resistor("obd_rsub", "x", "0", 10e6)
        op = operating_point(c)
        assert 0.0 <= op.voltage("x") <= tech.vdd + 0.1

    def test_solver_options_respected(self):
        op = operating_point(_divider(), options=SolverOptions(max_iterations=5))
        assert op.voltage("b") == pytest.approx(2.0, rel=1e-6)
