"""Tests for the unified campaign API: registry, pipeline, parity, reporting."""

from __future__ import annotations

import json

import pytest

from repro.atpg import greedy_compaction, run_obd_atpg, simulate_obd
from repro.campaign import (
    SINGLE_PATTERN,
    TWO_PATTERN,
    Campaign,
    CampaignError,
    CampaignSpec,
    get_model,
    register_model,
    registered_models,
    run_campaign,
)
from repro.faults import obd_fault_universe, stuck_at_universe
from repro.logic import GateType


class TestRegistry:
    def test_four_models_registered(self):
        assert registered_models() == ("obd", "path-delay", "stuck-at", "transition")

    def test_get_model_shapes(self):
        assert get_model("stuck-at").pattern_kind == SINGLE_PATTERN
        for name in ("transition", "path-delay", "obd"):
            assert get_model(name).pattern_kind == TWO_PATTERN

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="unknown fault model"):
            get_model("bridging")

    def test_duplicate_registration_rejected(self):
        model = get_model("obd")
        with pytest.raises(ValueError, match="already registered"):
            register_model(model)
        # replace=True keeps the registry unchanged but does not raise.
        assert register_model(model, replace=True) is model

    def test_models_expose_universe_and_atpg(self, fa_sum):
        for name in registered_models():
            model = get_model(name)
            universe = model.build_universe(fa_sum)
            assert len(universe) > 0
            outcome = model.generate_test(fa_sum, next(iter(universe)))
            assert outcome.success == bool(outcome.tests)


class TestSpecValidation:
    def test_bad_pattern_source(self):
        with pytest.raises(CampaignError):
            Campaign(CampaignSpec(pattern_source="walking-ones"))

    def test_no_phase_at_all(self):
        with pytest.raises(CampaignError):
            Campaign(CampaignSpec(pattern_source="none", run_atpg=False))

    def test_bad_engine_fails_fast(self):
        """A typoed engine is rejected at spec time, not after the ATPG run,
        and surfaces as CampaignError like every other bad field."""
        with pytest.raises(CampaignError, match="unknown fault-simulation engine"):
            CampaignSpec(engine="quantum")

    def test_unknown_model_is_a_spec_error(self):
        with pytest.raises(CampaignError, match="unknown fault model"):
            Campaign(CampaignSpec(model="bridging"))

    def test_sic_needs_two_pattern_model(self):
        """sic x single-pattern fails at construction and names both fields."""
        with pytest.raises(CampaignError, match="pattern_source='sic'.*two-pattern") as err:
            CampaignSpec(model="stuck-at", pattern_source="sic")
        assert "stuck-at" in str(err.value)

    def test_sic_accepted_for_two_pattern_models(self):
        for name in ("transition", "path-delay", "obd"):
            assert CampaignSpec(model=name, pattern_source="sic").pattern_source == "sic"

    def test_shards_must_be_positive(self):
        """shards < 1 fails at construction and the message names the field."""
        for bad in (0, -3):
            with pytest.raises(CampaignError, match=f"shards must be >= 1, got {bad}"):
                CampaignSpec(shards=bad)
        assert CampaignSpec(shards=7).shards == 7

    def test_validation_fires_at_construction_not_mid_run(self):
        """A bad field never survives to run(): construction itself raises."""
        with pytest.raises(CampaignError, match="pattern_count"):
            CampaignSpec(pattern_count=-1)
        with pytest.raises(CampaignError, match="word_bits"):
            CampaignSpec(word_bits=0)

    def test_spec_and_kwargs_exclusive(self, fa_sum):
        with pytest.raises(CampaignError):
            run_campaign(fa_sum, CampaignSpec(), model="obd")


class TestResolveCircuitErrors:
    """Bad circuit references surface as CampaignError / LogicCircuitError
    with actionable messages -- never a bare ValueError or FileNotFoundError."""

    def test_malformed_parametric_ref_missing_args(self):
        from repro.campaign import resolve_circuit

        with pytest.raises(CampaignError, match="needs arguments, e.g. 'rdag:4'"):
            resolve_circuit("rdag:")

    def test_degenerate_builder_size_keeps_builder_error(self):
        from repro.campaign import resolve_circuit
        from repro.logic import LogicCircuitError

        with pytest.raises(LogicCircuitError, match="bits >= 1"):
            resolve_circuit("mult:0")

    def test_nonexistent_bench_path_is_campaign_error(self, tmp_path):
        from repro.campaign import resolve_circuit

        missing = tmp_path / "nope.bench"
        with pytest.raises(CampaignError, match="no .bench file at"):
            resolve_circuit(str(missing))
        # Never a FileNotFoundError leak.
        try:
            resolve_circuit(str(missing))
        except FileNotFoundError:  # pragma: no cover - the regression itself
            pytest.fail("FileNotFoundError leaked out of resolve_circuit")
        except CampaignError:
            pass

    def test_unreadable_bench_path_is_campaign_error(self, tmp_path):
        from repro.campaign import resolve_circuit

        directory = tmp_path / "adir.bench"
        directory.mkdir()
        with pytest.raises(CampaignError, match="cannot read .bench file"):
            resolve_circuit(str(directory))

    def test_non_integer_arguments(self):
        from repro.campaign import resolve_circuit

        with pytest.raises(CampaignError, match="must be integers"):
            resolve_circuit("mult:a")

    def test_unknown_family_and_unknown_name(self):
        from repro.campaign import resolve_circuit

        with pytest.raises(CampaignError, match="unknown parametric circuit family"):
            resolve_circuit("quux:4")
        with pytest.raises(CampaignError, match="registered:"):
            resolve_circuit("quux")

    def test_wrong_argument_count(self):
        from repro.campaign import resolve_circuit

        with pytest.raises(CampaignError, match="between 1 and 1"):
            resolve_circuit("mult:2,3")

    def test_non_string_reference(self):
        from repro.campaign import resolve_circuit

        with pytest.raises(CampaignError, match="expected a circuit name"):
            resolve_circuit(123)

    def test_campaign_run_normalizes_everything_to_campaign_error(self):
        for ref in ("rdag:", "mult:0", "/nonexistent/f.bench", "quux:4"):
            with pytest.raises(CampaignError):
                run_campaign(ref, CampaignSpec(model="stuck-at"))


class TestSection43Parity:
    """One campaign reproduces the hand-wired examples/full_adder_atpg.py flow."""

    @pytest.fixture(scope="class")
    def obd_campaign(self, fa_sum):
        spec = CampaignSpec(
            model="obd",
            universe_options={"gate_types": [GateType.NAND2]},
            pattern_source="none",
            drop_detected=False,
        )
        return Campaign(spec).run(fa_sum)

    @pytest.fixture(scope="class")
    def hand_wired(self, fa_sum):
        faults = obd_fault_universe(fa_sum, gate_types=[GateType.NAND2])
        summary = run_obd_atpg(fa_sum, faults)
        pairs = [(t.first, t.second) for t in summary.tests]
        report = simulate_obd(fa_sum, pairs, faults)
        return summary, pairs, report, greedy_compaction(report)

    def test_same_tests(self, obd_campaign, hand_wired):
        _, pairs, _, _ = hand_wired
        assert obd_campaign.tests == pairs

    def test_same_detected_fault_sets(self, obd_campaign, hand_wired):
        _, _, report, _ = hand_wired
        assert set(obd_campaign.detected_faults) == set(report.detected_faults)
        assert obd_campaign.detections == report.detections

    def test_same_compaction(self, obd_campaign, hand_wired):
        _, _, _, compaction = hand_wired
        assert obd_campaign.compaction.selected_indices == compaction.selected_indices
        assert obd_campaign.compaction.size == compaction.size

    def test_same_untestable_accounting(self, obd_campaign, hand_wired):
        summary, _, _, _ = hand_wired
        untested = {o.fault.key for o in obd_campaign.atpg_phase.untestable}
        assert untested == {r.fault.key for r in summary.untestable}

    def test_all_four_models_complete_the_pipeline(self, fa_sum):
        """ATPG-only campaigns agree with exhaustive fault simulation for
        every registered model on the Figure-8 full adder."""
        for name in registered_models():
            model = get_model(name)
            atpg_only = run_campaign(
                fa_sum, model=name, pattern_source="none", drop_detected=False
            )
            exhaustive = run_campaign(
                fa_sum, model=name, pattern_source="exhaustive", run_atpg=False
            )
            assert atpg_only.coverage.aborted == 0, name
            assert set(atpg_only.detected_faults) == set(exhaustive.detected_faults), name
            # Everything is either detected or proven untestable.
            efficiency = atpg_only.coverage.test_efficiency
            assert efficiency == pytest.approx(1.0), (name, efficiency)
            assert model.name == name


class TestPipelinePhases:
    def test_drop_detected_keeps_one_index_per_fault(self, fa_sum):
        """With dropping on, a fault detected in the pattern phase is not
        re-simulated by the ATPG phase: at most one index survives."""
        result = run_campaign(
            fa_sum,
            model="obd",
            universe_options={"gate_types": [GateType.NAND2]},
            pattern_source="random",
            pattern_count=3,
            seed=0,
            drop_detected=True,
        )
        for key, indices in result.detections.items():
            assert len(indices) <= 1, (key, indices)

    def test_pattern_phase_then_atpg_skips_detected(self, fa_sum):
        result = run_campaign(
            fa_sum,
            model="obd",
            universe_options={"gate_types": [GateType.NAND2]},
            pattern_source="sic",
        )
        atpg = result.atpg_phase
        assert atpg is not None
        detected_by_patterns = set(result.pattern_phase.report.detected_faults)
        assert set(atpg.skipped) == detected_by_patterns
        assert atpg.attempted == len(result.faults) - len(atpg.skipped)
        attempted_keys = {o.fault.key for o in atpg.outcomes}
        assert not attempted_keys & detected_by_patterns

    def test_merged_indices_offset_by_pattern_phase(self, fa_sum):
        result = run_campaign(fa_sum, model="stuck-at", pattern_source="random",
                              pattern_count=4, seed=9, drop_detected=False)
        num_patterns = len(result.pattern_phase.tests)
        assert result.merged_report.num_tests == num_patterns + len(result.atpg_phase.tests)
        for key, indices in result.atpg_phase.report.detections.items():
            merged = result.detections[key]
            pattern_part = result.pattern_phase.report.detections[key]
            assert merged == pattern_part + [num_patterns + i for i in indices]

    def test_compacted_tests_detect_everything(self, fa_sum):
        result = run_campaign(fa_sum, model="transition", pattern_source="sic",
                              drop_detected=False)
        model = get_model("transition")
        report = model.simulate(fa_sum, result.compacted_tests, result.faults)
        assert set(report.detected_faults) == set(result.detected_faults)

    def test_collapse_stuck_at(self, fa_sum):
        full = run_campaign(fa_sum, model="stuck-at", pattern_source="exhaustive",
                            run_atpg=False, collapse=False)
        collapsed = run_campaign(fa_sum, model="stuck-at", pattern_source="exhaustive",
                                 run_atpg=False, collapse=True)
        assert len(collapsed.faults) < len(full.faults)
        assert collapsed.uncollapsed_faults == len(full.faults)
        assert set(f.key for f in collapsed.faults) <= set(f.key for f in full.faults)

    def test_collapse_obd_equivalence_groups(self, fa_sum):
        spec = CampaignSpec(
            model="obd",
            universe_options={"gate_types": [GateType.NAND2]},
            collapse=True,
            pattern_source="exhaustive",
            run_atpg=False,
        )
        result = Campaign(spec).run(fa_sum)
        # 14 NANDs x 3 equivalence groups ({NA,NB}, {PA}, {PB}).
        assert len(result.faults) == 14 * 3
        assert result.uncollapsed_faults == 56

    def test_random_pattern_phase_respects_kind(self, fa_sum):
        single = Campaign(CampaignSpec(model="stuck-at", pattern_source="random",
                                       pattern_count=5)).patterns_for(fa_sum)
        pairs = Campaign(CampaignSpec(model="obd", pattern_source="random",
                                      pattern_count=5)).patterns_for(fa_sum)
        assert all(isinstance(bit, int) for pattern in single for bit in pattern)
        assert all(len(pair) == 2 and pair[0] != pair[1] for pair in pairs)

    def test_all_engines_match(self, fa_sum):
        """packed (codegen), interp (baseline) and serial campaigns agree."""
        packed_detections = None
        for engine in ("packed", "interp", "serial"):
            result = run_campaign(fa_sum, model="obd", pattern_source="sic",
                                  run_atpg=False, engine=engine, compact=False)
            if packed_detections is None:
                packed_detections = result.detections
            else:
                assert result.detections == packed_detections

    def test_word_bits_knob(self, fa_sum):
        """Any positive word_bits yields identical detections; 0 is rejected."""
        baseline = run_campaign(fa_sum, model="stuck-at", pattern_source="exhaustive",
                                run_atpg=False, compact=False)
        narrow = run_campaign(fa_sum, model="stuck-at", pattern_source="exhaustive",
                              run_atpg=False, compact=False, word_bits=2)
        assert narrow.detections == baseline.detections
        assert narrow.as_dict()["spec"]["word_bits"] == 2
        with pytest.raises(CampaignError, match="word_bits"):
            Campaign(CampaignSpec(word_bits=0))


class TestReporting:
    @pytest.fixture(scope="class")
    def result(self, fa_sum):
        return run_campaign(
            fa_sum,
            model="obd",
            universe_options={"gate_types": [GateType.NAND2]},
            pattern_source="sic",
            drop_detected=False,
        )

    def test_describe_mentions_phases(self, result):
        text = result.describe()
        assert "campaign[obd]" in text
        assert "patterns[sic]" in text
        assert "atpg:" in text
        assert "compaction:" in text

    def test_to_json_roundtrip(self, result):
        payload = json.loads(result.to_json())
        assert payload["model"] == "obd"
        assert payload["spec"]["universe_options"] == {"gate_types": ["NAND2"]}
        assert payload["faults"] == 56
        assert payload["pattern_phase"]["num_tests"] == len(result.pattern_phase.tests)
        assert payload["atpg_phase"]["skipped"] == len(result.atpg_phase.skipped)
        assert payload["compaction"]["size"] == result.compaction.size
        assert len(payload["compaction"]["tests"]) == result.compaction.size
        assert set(payload["detections"]) == set(result.detections)

    def test_overall_coverage_counts(self, result):
        coverage = result.coverage
        assert coverage.total_faults == 56
        assert coverage.detected == len(result.detected_faults)
        assert coverage.detected + coverage.undetected == coverage.total_faults
        assert coverage.num_tests == result.merged_report.num_tests

    def test_wrappers_still_delegate(self, fa_sum):
        """The legacy silo entry points agree with the registry they wrap."""
        faults = obd_fault_universe(fa_sum, gate_types=[GateType.NAND2])
        pairs = Campaign(CampaignSpec(model="obd", pattern_source="sic")).patterns_for(fa_sum)
        legacy = simulate_obd(fa_sum, pairs, faults)
        registry = get_model("obd").simulate(fa_sum, pairs, faults)
        assert legacy.detections == registry.detections

    def test_stuck_at_wrapper_engine_validation(self, fa_sum):
        from repro.atpg import simulate_stuck_at

        faults = list(stuck_at_universe(fa_sum))
        with pytest.raises(ValueError, match="unknown fault-simulation engine"):
            simulate_stuck_at(fa_sum, [(0, 0, 0)], faults, engine="quantum")
