"""Tests for the OBD core: breakdown ladder, defects, injection, progression,
excitation and detection conditions."""

from __future__ import annotations

import pytest

from repro.cells import build_nand_harness
from repro.core import (
    NMOS_STAGE_PARAMETERS,
    PMOS_STAGE_PARAMETERS,
    BreakdownParameters,
    BreakdownStage,
    OBDDefect,
    ProgressionModel,
    all_sequences,
    analyze_gate,
    compare_em_and_obd,
    defect_sites_for_gate,
    excitation_conditions,
    excited_sites,
    format_sequence,
    gate_structure,
    inject_into_harness,
    is_excited_obd,
    is_exercised_em,
    output_switches,
    paper_nand_test_set,
    paper_nor_test_set,
    parse_sequence,
    remove_injection,
    stage_parameters,
)
from repro.spice import operating_point


class TestBreakdownLadder:
    def test_stage_ordering(self):
        stages = BreakdownStage.progression()
        assert stages[0] == BreakdownStage.FAULT_FREE
        assert stages[-1] == BreakdownStage.HBD
        assert BreakdownStage.MBD1 < BreakdownStage.MBD3

    def test_nmos_table1_values(self):
        assert NMOS_STAGE_PARAMETERS[BreakdownStage.MBD2].saturation_current == pytest.approx(1e-27)
        assert NMOS_STAGE_PARAMETERS[BreakdownStage.MBD2].resistance == pytest.approx(100.0)
        assert NMOS_STAGE_PARAMETERS[BreakdownStage.HBD].resistance == pytest.approx(0.05)

    def test_pmos_table1_values(self):
        assert PMOS_STAGE_PARAMETERS[BreakdownStage.MBD1].resistance == pytest.approx(1000.0)
        assert PMOS_STAGE_PARAMETERS[BreakdownStage.MBD3].saturation_current == pytest.approx(1.2e-29)

    def test_progression_monotonic_in_severity(self):
        """Leakage grows and resistance shrinks as breakdown progresses."""
        for ladder in (NMOS_STAGE_PARAMETERS, PMOS_STAGE_PARAMETERS):
            ordered = [ladder[s] for s in BreakdownStage.progression()]
            isats = [p.saturation_current for p in ordered]
            resistances = [p.resistance for p in ordered]
            assert all(b >= a for a, b in zip(isats, isats[1:]))
            assert all(b <= a for a, b in zip(resistances, resistances[1:]))

    def test_stage_parameters_lookup(self):
        assert stage_parameters("n", BreakdownStage.MBD1).resistance == 500.0
        assert stage_parameters("p", BreakdownStage.MBD1).resistance == 1000.0
        with pytest.raises(ValueError):
            stage_parameters("z", BreakdownStage.MBD1)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BreakdownParameters(saturation_current=-1.0, resistance=1.0)
        with pytest.raises(ValueError):
            BreakdownParameters(saturation_current=1e-20, resistance=0.0)


class TestDefect:
    def test_site_parsing(self):
        defect = OBDDefect("na", BreakdownStage.MBD1)
        assert defect.site == "NA"
        assert defect.polarity == "n"
        assert defect.input_pin == "A"

    def test_effective_parameters_from_stage(self):
        defect = OBDDefect("PB", BreakdownStage.MBD2)
        assert defect.effective_parameters.resistance == pytest.approx(900.0)

    def test_explicit_parameters_override(self):
        params = BreakdownParameters(1e-20, 42.0)
        defect = OBDDefect("NA", BreakdownStage.MBD1, parameters=params)
        assert defect.effective_parameters.resistance == 42.0

    def test_at_stage_and_in_gate(self):
        defect = OBDDefect("NA", BreakdownStage.MBD1)
        later = defect.at_stage(BreakdownStage.HBD)
        assert later.stage == BreakdownStage.HBD
        bound = defect.in_gate("g7")
        assert bound.key == "g7/NA@mbd1"

    def test_invalid_site_rejected(self):
        with pytest.raises(ValueError):
            OBDDefect("A")
        with pytest.raises(ValueError):
            OBDDefect("XA")

    def test_defect_sites_for_gate(self):
        assert sorted(defect_sites_for_gate(2)) == ["NA", "NB", "PA", "PB"]
        assert len(defect_sites_for_gate(3)) == 6


class TestInjection:
    def test_injects_four_elements(self, tech):
        harness = build_nand_harness(tech, ((0, 1), (1, 1)))
        before = len(harness.circuit)
        injected = inject_into_harness(harness, OBDDefect("NA", BreakdownStage.MBD2))
        assert len(harness.circuit) == before + 4
        assert injected.breakdown_node in harness.circuit.nodes()
        assert all(name in harness.circuit for name in injected.element_names)

    def test_removal_restores_circuit(self, tech):
        harness = build_nand_harness(tech, ((0, 1), (1, 1)))
        before = len(harness.circuit)
        injected = inject_into_harness(harness, OBDDefect("PB", BreakdownStage.MBD1))
        remove_injection(harness.circuit, injected)
        assert len(harness.circuit) == before

    def test_nmos_injection_degrades_static_input(self, tech):
        """With the defective NMOS gate held high, its input level droops."""
        clean = build_nand_harness(tech, ((1, 1), (1, 1)))
        op_clean = operating_point(clean.circuit)
        faulty = build_nand_harness(tech, ((1, 1), (1, 1)))
        inject_into_harness(faulty, OBDDefect("NA", BreakdownStage.MBD3))
        op_faulty = operating_point(faulty.circuit)
        node = clean.input_nodes["A"]
        assert op_faulty.voltage(node) < op_clean.voltage(node) - 0.2

    def test_polarity_mismatch_impossible(self, tech):
        harness = build_nand_harness(tech, ((0, 1), (1, 1)))
        defect = OBDDefect("NA", BreakdownStage.MBD1)
        injected = inject_into_harness(harness, defect)
        assert injected.site.polarity == "n"


class TestProgression:
    def test_stage_at_boundaries(self):
        model = ProgressionModel("n")
        assert model.stage_at(-1.0) == BreakdownStage.FAULT_FREE
        assert model.stage_at(model.hbd_time + 1.0) == BreakdownStage.HBD

    def test_stage_sequence_is_monotonic(self):
        model = ProgressionModel("n")
        hours = [1, 3, 6, 10, 15, 20, 26, 27]
        stages = [model.stage_at(h * 3600.0) for h in hours]
        orders = [s.order for s in stages]
        assert all(b >= a for a, b in zip(orders, orders[1:]))

    def test_time_of_stage_inverse(self):
        model = ProgressionModel("n")
        for stage in (BreakdownStage.MBD1, BreakdownStage.MBD2, BreakdownStage.MBD3):
            t = model.time_of_stage(stage)
            assert model.stage_at(t + 1.0).order >= stage.order

    def test_saturation_current_grows_exponentially(self):
        """Equal time steps multiply the leakage by the same factor."""
        model = ProgressionModel("n")
        quarter = model.saturation_current_at(model.time_to_hbd * 0.25)
        half = model.saturation_current_at(model.time_to_hbd * 0.5)
        three_quarters = model.saturation_current_at(model.time_to_hbd * 0.75)
        assert half / quarter == pytest.approx(three_quarters / half, rel=1e-6)

    def test_detection_window(self):
        model = ProgressionModel("n")
        start, end = model.detection_window()
        assert 0.0 < start < end
        assert end == pytest.approx(model.hbd_time)
        assert 0.0 < model.window_fraction() < 1.0

    def test_default_duration_is_27_hours(self):
        assert ProgressionModel("p").time_to_hbd == pytest.approx(27 * 3600.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProgressionModel("n", time_to_hbd=-1.0)
        with pytest.raises(ValueError):
            ProgressionModel("q")


class TestExcitation:
    def test_nand_structure(self):
        structure = gate_structure("NAND2")
        assert sorted(structure.sites) == ["NA", "NB", "PA", "PB"]
        assert len(structure.pull_up) == 2
        assert len(structure.pull_down) == 2

    def test_paper_nand_conditions(self):
        """Section 4.1: the exact excitation conditions for the NAND gate."""
        falling = {((1, 0), (1, 1)), ((0, 0), (1, 1)), ((0, 1), (1, 1))}
        assert set(excitation_conditions("NAND2", "NA")) == falling
        assert set(excitation_conditions("NAND2", "NB")) == falling
        assert set(excitation_conditions("NAND2", "PA")) == {((1, 1), (0, 1))}
        assert set(excitation_conditions("NAND2", "PB")) == {((1, 1), (1, 0))}

    def test_paper_nor_conditions(self):
        """Section 5: the exact excitation conditions for the NOR gate."""
        rising = {((1, 0), (0, 0)), ((0, 1), (0, 0)), ((1, 1), (0, 0))}
        assert set(excitation_conditions("NOR2", "PA")) == rising
        assert set(excitation_conditions("NOR2", "PB")) == rising
        assert set(excitation_conditions("NOR2", "NA")) == {((0, 0), (1, 0))}
        assert set(excitation_conditions("NOR2", "NB")) == {((0, 0), (0, 1))}

    def test_both_inputs_switching_excites_no_pmos(self):
        assert not is_excited_obd("NAND2", "PA", ((1, 1), (0, 0)))
        assert not is_excited_obd("NAND2", "PB", ((1, 1), (0, 0)))
        # ...but it does exercise both for EM purposes.
        assert is_exercised_em("NAND2", "PA", ((1, 1), (0, 0)))
        assert is_exercised_em("NAND2", "PB", ((1, 1), (0, 0)))

    def test_em_is_weaker_than_obd(self):
        for gate in ("NAND2", "NOR2", "AOI21", "OAI21"):
            for site in gate_structure(gate).sites:
                for seq in all_sequences(gate):
                    if is_excited_obd(gate, site, seq):
                        assert is_exercised_em(gate, site, seq)

    def test_output_must_switch(self):
        assert not is_excited_obd("NAND2", "NA", ((1, 1), (1, 1)))
        assert not output_switches("NAND2", ((0, 1), (1, 0)))

    def test_inverter_conditions(self):
        assert set(excitation_conditions("INV", "NA")) == {((0,), (1,))}
        assert set(excitation_conditions("INV", "PA")) == {((1,), (0,))}

    def test_excited_sites(self):
        assert excited_sites("NAND2", ((0, 1), (1, 1))) == {"NA", "NB"}
        assert excited_sites("NAND2", ((1, 1), (0, 1))) == {"PA"}

    def test_sequence_formatting_roundtrip(self):
        seq = ((1, 1), (0, 1))
        assert format_sequence(seq) == "(11,01)"
        assert parse_sequence("(11,01)") == seq
        with pytest.raises(ValueError):
            parse_sequence("(11,0)")

    def test_unsupported_gate_type(self):
        with pytest.raises(ValueError):
            gate_structure("XOR2")


class TestDetection:
    def test_nand_minimal_set_size(self):
        analysis = analyze_gate("NAND2")
        assert analysis.minimal_size == 3
        assert not analysis.undetectable_sites

    def test_nor_minimal_set_size(self):
        analysis = analyze_gate("NOR2")
        assert analysis.minimal_size == 3

    def test_paper_sets_cover(self):
        assert analyze_gate("NAND2").covers_all(paper_nand_test_set())
        assert analyze_gate("NOR2").covers_all(paper_nor_test_set())

    def test_incomplete_set_detected(self):
        analysis = analyze_gate("NAND2")
        partial = [((0, 1), (1, 1)), ((1, 1), (0, 1))]  # misses PB
        assert not analysis.covers_all(partial)
        assert "PB" not in analysis.detects(partial)

    def test_nand3_needs_three_pmos_sequences(self):
        analysis = analyze_gate("NAND3")
        # Each PMOS has exactly one exciting sequence; all three are needed.
        for site in ("PA", "PB", "PC"):
            assert len(analysis.site_conditions[site]) == 1
        assert analysis.minimal_size == 4

    def test_em_minimal_misses_obd_on_nand(self):
        comparison = compare_em_and_obd("NAND2")
        assert not comparison.em_set_covers_obd
        assert len(comparison.em_minimal) < len(comparison.obd_minimal)

    def test_complex_gate_comparison(self):
        comparison = compare_em_and_obd("AOI21")
        assert comparison.obd_sites_missed_by_em_minimal

    def test_describe_mentions_every_site(self):
        text = analyze_gate("NAND2").describe()
        for site in ("NA", "NB", "PA", "PB"):
            assert site in text
