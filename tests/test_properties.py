"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.atpg import evaluate_gate_values, from_bit, simulate_with_forced_net
from repro.core import (
    BreakdownStage,
    ProgressionModel,
    excited_sites,
    is_excited_obd,
    is_exercised_em,
    output_switches,
)
from repro.logic import (
    GateType,
    evaluate_gate,
    full_adder_sum,
    ripple_carry_adder,
    simulate_pattern,
)
from repro.spice import Circuit, operating_point
from repro.spice.waveform import Waveform

import numpy as np

FA_SUM = full_adder_sum()
RCA3 = ripple_carry_adder(3)

SIMPLE_GATES = [
    GateType.INV,
    GateType.NAND2,
    GateType.NOR2,
    GateType.NAND3,
    GateType.NOR3,
    GateType.AOI21,
    GateType.OAI21,
]

bits = st.integers(min_value=0, max_value=1)


def pattern_strategy(width: int):
    return st.tuples(*([bits] * width))


# --------------------------------------------------------------------------- #
# Logic-level invariants.
# --------------------------------------------------------------------------- #
@given(st.sampled_from(SIMPLE_GATES), st.data())
def test_five_valued_algebra_agrees_with_boolean(gate_type, data):
    """The 5-valued evaluation restricted to known values matches Boolean eval."""
    inputs = data.draw(pattern_strategy(gate_type.num_inputs))
    expected = evaluate_gate(gate_type, inputs)
    value = evaluate_gate_values(gate_type, [from_bit(b) for b in inputs])
    assert value.good == expected
    assert value.faulty == expected


@given(pattern_strategy(3), pattern_strategy(3))
def test_full_adder_sum_matches_xor(first, second):
    values1 = simulate_pattern(FA_SUM, first)
    values2 = simulate_pattern(FA_SUM, second)
    assert values1["SUM"] == first[0] ^ first[1] ^ first[2]
    assert values2["SUM"] == second[0] ^ second[1] ^ second[2]


@given(st.integers(0, 7), st.integers(0, 7), bits)
def test_ripple_carry_adder_is_an_adder(a, b, carry):
    pattern = [(a >> i) & 1 for i in range(3)] + [(b >> i) & 1 for i in range(3)] + [carry]
    values = simulate_pattern(RCA3, pattern)
    total = sum(values[f"S{i}"] << i for i in range(3)) + (values["COUT"] << 3)
    assert total == a + b + carry


@given(pattern_strategy(3), st.sampled_from([g.output for g in FA_SUM.gates]))
def test_forcing_a_net_to_its_own_value_changes_nothing(pattern, net):
    good = simulate_pattern(FA_SUM, pattern)
    forced = simulate_with_forced_net(FA_SUM, pattern, net, good[net])
    assert forced == good


# --------------------------------------------------------------------------- #
# Excitation-rule invariants (Sections 4.1 / 5).
# --------------------------------------------------------------------------- #
@given(st.sampled_from(SIMPLE_GATES), st.data())
def test_obd_excitation_implies_em_exercise_and_output_switch(gate_type, data):
    width = gate_type.num_inputs
    v1 = data.draw(pattern_strategy(width))
    v2 = data.draw(pattern_strategy(width))
    if v1 == v2:
        return
    sequence = (v1, v2)
    for site in excited_sites(gate_type, sequence, mode="obd"):
        assert is_exercised_em(gate_type, site, sequence)
        assert output_switches(gate_type, sequence)


@given(st.sampled_from(SIMPLE_GATES), st.data())
def test_at_most_one_parallel_pullup_site_excited_per_rising_edge(gate_type, data):
    """For NAND-like gates, a rising output excites at most one PMOS defect."""
    if gate_type not in (GateType.NAND2, GateType.NAND3):
        return
    width = gate_type.num_inputs
    v1 = data.draw(pattern_strategy(width))
    v2 = data.draw(pattern_strategy(width))
    if v1 == v2:
        return
    pmos_sites = [s for s in excited_sites(gate_type, (v1, v2)) if s.startswith("P")]
    assert len(pmos_sites) <= 1


# --------------------------------------------------------------------------- #
# Progression-model invariants.
# --------------------------------------------------------------------------- #
@given(
    st.sampled_from(["n", "p"]),
    st.floats(min_value=0.0, max_value=27 * 3600.0),
    st.floats(min_value=0.0, max_value=27 * 3600.0),
)
def test_progression_is_monotonic_in_time(polarity, t1, t2):
    model = ProgressionModel(polarity)
    early, late = min(t1, t2), max(t1, t2)
    assert model.saturation_current_at(late) >= model.saturation_current_at(early)
    assert model.resistance_at(late) <= model.resistance_at(early)
    assert model.stage_at(late).order >= model.stage_at(early).order


@given(st.sampled_from(["n", "p"]), st.sampled_from(list(BreakdownStage)))
def test_stage_times_lie_inside_the_progression(polarity, stage):
    model = ProgressionModel(polarity)
    t = model.time_of_stage(stage)
    assert model.onset_time <= t <= model.hbd_time


# --------------------------------------------------------------------------- #
# Analog substrate invariants.
# --------------------------------------------------------------------------- #
@given(
    st.floats(min_value=10.0, max_value=1e6),
    st.floats(min_value=10.0, max_value=1e6),
    st.floats(min_value=0.1, max_value=10.0),
)
@settings(max_examples=25, deadline=None)
def test_resistive_divider_solution(r1, r2, vin):
    circuit = Circuit("divider")
    circuit.add_voltage_source("vin", "a", "0", dc=vin)
    circuit.add_resistor("r1", "a", "b", r1)
    circuit.add_resistor("r2", "b", "0", r2)
    op = operating_point(circuit)
    expected = vin * r2 / (r1 + r2)
    assert abs(op.voltage("b") - expected) < 1e-6 + 1e-3 * abs(expected)


@given(st.lists(st.floats(min_value=-5.0, max_value=5.0), min_size=2, max_size=40))
@settings(max_examples=50, deadline=None)
def test_waveform_crossings_alternate(values):
    wave = Waveform(np.arange(len(values), dtype=float), np.array(values))
    rising = wave.crossings(0.0, "rising")
    falling = wave.crossings(0.0, "falling")
    # Crossings at identical times (the signal touching the threshold exactly
    # at a sample point produces a rising and a falling crossing at the same
    # instant) are excluded: their relative order is arbitrary.
    touches = set(rising) & set(falling)
    merged = sorted(
        [(t, "r") for t in rising if t not in touches]
        + [(t, "f") for t in falling if t not in touches]
    )
    # The remaining crossings of the same threshold must alternate direction.
    for (_, kind_a), (_, kind_b) in zip(merged, merged[1:]):
        assert kind_a != kind_b
