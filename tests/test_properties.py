"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.atpg import (
    evaluate_gate_values,
    from_bit,
    packed_simulate_obd,
    packed_simulate_path_delay,
    packed_simulate_stuck_at,
    packed_simulate_transition,
    random_pairs,
    random_patterns,
    serial_simulate_obd,
    serial_simulate_path_delay,
    serial_simulate_stuck_at,
    serial_simulate_transition,
    simulate_with_forced_net,
)
from repro.atpg.structural import get_atpg_engine
from repro.campaign import Campaign, CampaignSpec, ShardedCampaign
from repro.core import (
    BreakdownStage,
    ProgressionModel,
    excited_sites,
    is_exercised_em,
    output_switches,
)
from repro.faults import (
    obd_fault_universe,
    path_delay_universe,
    stuck_at_universe,
    transition_fault_universe,
)
from repro.logic import (
    OBD_DAG_GATE_TYPES,
    GateType,
    array_multiplier,
    carry_lookahead_adder,
    evaluate_gate,
    full_adder_sum,
    magnitude_comparator,
    parse_bench,
    random_dag,
    ripple_carry_adder,
    simulate_pattern,
    structurally_equal,
    write_bench,
)
from repro.spice import Circuit, operating_point
from repro.spice.waveform import Waveform


FA_SUM = full_adder_sum()
RCA3 = ripple_carry_adder(3)

SIMPLE_GATES = [
    GateType.INV,
    GateType.NAND2,
    GateType.NOR2,
    GateType.NAND3,
    GateType.NOR3,
    GateType.AOI21,
    GateType.OAI21,
]

bits = st.integers(min_value=0, max_value=1)


def pattern_strategy(width: int):
    return st.tuples(*([bits] * width))


# --------------------------------------------------------------------------- #
# Logic-level invariants.
# --------------------------------------------------------------------------- #
@given(st.sampled_from(SIMPLE_GATES), st.data())
def test_five_valued_algebra_agrees_with_boolean(gate_type, data):
    """The 5-valued evaluation restricted to known values matches Boolean eval."""
    inputs = data.draw(pattern_strategy(gate_type.num_inputs))
    expected = evaluate_gate(gate_type, inputs)
    value = evaluate_gate_values(gate_type, [from_bit(b) for b in inputs])
    assert value.good == expected
    assert value.faulty == expected


@given(pattern_strategy(3), pattern_strategy(3))
def test_full_adder_sum_matches_xor(first, second):
    values1 = simulate_pattern(FA_SUM, first)
    values2 = simulate_pattern(FA_SUM, second)
    assert values1["SUM"] == first[0] ^ first[1] ^ first[2]
    assert values2["SUM"] == second[0] ^ second[1] ^ second[2]


@given(st.integers(0, 7), st.integers(0, 7), bits)
def test_ripple_carry_adder_is_an_adder(a, b, carry):
    pattern = [(a >> i) & 1 for i in range(3)] + [(b >> i) & 1 for i in range(3)] + [carry]
    values = simulate_pattern(RCA3, pattern)
    total = sum(values[f"S{i}"] << i for i in range(3)) + (values["COUT"] << 3)
    assert total == a + b + carry


@given(pattern_strategy(3), st.sampled_from([g.output for g in FA_SUM.gates]))
def test_forcing_a_net_to_its_own_value_changes_nothing(pattern, net):
    good = simulate_pattern(FA_SUM, pattern)
    forced = simulate_with_forced_net(FA_SUM, pattern, net, good[net])
    assert forced == good


# --------------------------------------------------------------------------- #
# Generator-family invariants.
# --------------------------------------------------------------------------- #
@given(st.integers(min_value=1, max_value=4), st.data())
@settings(max_examples=20, deadline=None)
def test_array_multiplier_matches_integer_product(bits, data):
    a = data.draw(st.integers(0, 2**bits - 1))
    b = data.draw(st.integers(0, 2**bits - 1))
    circuit = array_multiplier(bits)
    pattern = [(a >> i) & 1 for i in range(bits)] + [(b >> i) & 1 for i in range(bits)]
    values = simulate_pattern(circuit, pattern)
    assert sum(values[f"P{i}"] << i for i in range(2 * bits)) == a * b


@given(st.integers(min_value=1, max_value=5), st.data())
@settings(max_examples=20, deadline=None)
def test_carry_lookahead_matches_integer_sum(bits, data):
    a = data.draw(st.integers(0, 2**bits - 1))
    b = data.draw(st.integers(0, 2**bits - 1))
    cin = data.draw(st.integers(0, 1))
    circuit = carry_lookahead_adder(bits)
    pattern = (
        [(a >> i) & 1 for i in range(bits)]
        + [(b >> i) & 1 for i in range(bits)]
        + [cin]
    )
    values = simulate_pattern(circuit, pattern)
    total = sum(values[f"S{i}"] << i for i in range(bits)) + (values["COUT"] << bits)
    assert total == a + b + cin


@given(st.integers(min_value=1, max_value=5), st.data())
@settings(max_examples=20, deadline=None)
def test_comparator_matches_integer_order(bits, data):
    a = data.draw(st.integers(0, 2**bits - 1))
    b = data.draw(st.integers(0, 2**bits - 1))
    circuit = magnitude_comparator(bits)
    pattern = [(a >> i) & 1 for i in range(bits)] + [(b >> i) & 1 for i in range(bits)]
    values = simulate_pattern(circuit, pattern)
    assert (values["EQ"], values["GT"], values["LT"]) == (int(a == b), int(a > b), int(a < b))


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_bench_round_trip_on_random_dags(seed):
    """write -> parse -> write is a fixed point on arbitrary generated DAGs."""
    circuit = random_dag(25, num_inputs=4, seed=seed, max_depth=6)
    text = write_bench(circuit)
    back = parse_bench(text, name=circuit.name)
    assert structurally_equal(circuit, back)
    assert write_bench(back) == text


# --------------------------------------------------------------------------- #
# Cross-engine equivalence: the serial engine is the executable spec the
# packed engine must match fault for fault, test index for test index --
# on random DAGs, for every fault model, with and without fault dropping.
# --------------------------------------------------------------------------- #
_ENGINE_PAIRS = {
    "stuck-at": (serial_simulate_stuck_at, packed_simulate_stuck_at),
    "transition": (serial_simulate_transition, packed_simulate_transition),
    "path-delay": (serial_simulate_path_delay, packed_simulate_path_delay),
    "obd": (serial_simulate_obd, packed_simulate_obd),
}


def _equivalence_case(model: str, seed: int, drop_detected: bool) -> None:
    # OBD needs an expandable-gate palette; other models take the full one.
    palette = OBD_DAG_GATE_TYPES if model == "obd" else None
    circuit = random_dag(18, num_inputs=4, seed=seed, max_depth=6, gate_types=palette)
    if model == "stuck-at":
        tests = random_patterns(circuit, 48, seed=seed + 1)
        faults = list(stuck_at_universe(circuit))
    else:
        tests = random_pairs(circuit, 48, seed=seed + 1)
        if model == "transition":
            faults = list(transition_fault_universe(circuit))
        elif model == "path-delay":
            faults = list(path_delay_universe(circuit, limit=60))
        else:
            faults = list(obd_fault_universe(circuit))
    serial_fn, packed_fn = _ENGINE_PAIRS[model]
    serial = serial_fn(circuit, tests, faults, drop_detected=drop_detected)
    packed = packed_fn(circuit, tests, faults, drop_detected=drop_detected)
    assert serial.num_tests == packed.num_tests
    assert serial.detections == packed.detections


@given(st.integers(min_value=0, max_value=10_000), st.booleans())
@settings(max_examples=15, deadline=None)
def test_serial_packed_equivalence_stuck_at(seed, drop_detected):
    _equivalence_case("stuck-at", seed, drop_detected)


@given(st.integers(min_value=0, max_value=10_000), st.booleans())
@settings(max_examples=15, deadline=None)
def test_serial_packed_equivalence_transition(seed, drop_detected):
    _equivalence_case("transition", seed, drop_detected)


@given(st.integers(min_value=0, max_value=10_000), st.booleans())
@settings(max_examples=15, deadline=None)
def test_serial_packed_equivalence_path_delay(seed, drop_detected):
    _equivalence_case("path-delay", seed, drop_detected)


@given(st.integers(min_value=0, max_value=10_000), st.booleans())
@settings(max_examples=15, deadline=None)
def test_serial_packed_equivalence_obd(seed, drop_detected):
    _equivalence_case("obd", seed, drop_detected)


# --------------------------------------------------------------------------- #
# Structural ATPG on random DAGs: any vector an engine emits must be a real
# test under BOTH fault simulators, and the two complete searches (D-algorithm
# and PODEM) must reach the same testable / proven_redundant verdicts.
# --------------------------------------------------------------------------- #
@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(("d-alg", "podem", "legacy")),
)
@settings(max_examples=10, deadline=None)
def test_structural_atpg_vectors_detected_by_both_simulators(seed, engine_name):
    circuit = random_dag(24, num_inputs=5, seed=seed, max_depth=7)
    engine = get_atpg_engine(engine_name)
    faults = list(stuck_at_universe(circuit))
    tested = []
    for fault in faults:
        result = engine.generate(circuit, fault)
        if result.success:
            tested.append(
                (fault, tuple(result.pattern[n] for n in circuit.primary_inputs))
            )
    assert tested, "random DAG produced no testable faults"
    patterns = [pattern for _, pattern in tested]
    serial = serial_simulate_stuck_at(circuit, patterns, [f for f, _ in tested])
    packed = packed_simulate_stuck_at(circuit, patterns, [f for f, _ in tested])
    for index, (fault, _) in enumerate(tested):
        assert index in serial.detections[fault.key]
        assert index in packed.detections[fault.key]
    assert serial.detections == packed.detections


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_structural_engines_agree_on_random_dags(seed):
    circuit = random_dag(30, num_inputs=5, seed=seed, max_depth=8)
    d_alg = get_atpg_engine("d-alg")
    podem = get_atpg_engine("podem")
    for fault in stuck_at_universe(circuit):
        a = d_alg.generate(circuit, fault)
        b = podem.generate(circuit, fault)
        if not a.aborted and not b.aborted:
            assert a.status == b.status, (fault.key, a.status, b.status)


@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(("stuck-at", "transition", "path-delay", "obd")),
)
@settings(max_examples=8, deadline=None)
def test_campaign_atpg_statuses_engine_independent(seed, model):
    """Per-fault tested / proven_redundant verdicts (not the vectors) are a
    property of the circuit, so the complete engines must report identical
    status maps through the campaign pipeline -- for all four fault models,
    including the two whose search ignores the engine selection."""
    palette = OBD_DAG_GATE_TYPES if model == "obd" else None
    circuit = random_dag(16, num_inputs=4, seed=seed, max_depth=6, gate_types=palette)
    status_maps = []
    for engine_name in ("d-alg", "podem"):
        spec = CampaignSpec(
            model=model,
            universe_options={"limit": 40} if model == "path-delay" else {},
            pattern_source="none",
            run_atpg=True,
            compact=False,
            atpg_engine=engine_name,
        )
        payload = Campaign(spec).run(circuit).as_dict(include_runtime=False)
        outcomes = payload["atpg_phase"]["outcomes"]
        assert "aborted" not in outcomes.values()
        status_maps.append(outcomes)
    assert status_maps[0] == status_maps[1]


# --------------------------------------------------------------------------- #
# Sharded-campaign determinism: partitioning the fault universe across any
# number of shards (ragged and empty final shards included) must reproduce
# the single-process Campaign.run result exactly -- coverage, per-fault
# detection indices, merged/compacted test lists and the JSON payload.
# --------------------------------------------------------------------------- #
SHARD_COUNTS = (1, 2, 3, 7)


def _sharded_equality_case(model: str, seed: int, shards: int, drop_detected: bool) -> None:
    palette = OBD_DAG_GATE_TYPES if model == "obd" else None
    circuit = random_dag(16, num_inputs=4, seed=seed, max_depth=6, gate_types=palette)
    spec = CampaignSpec(
        model=model,
        universe_options={"limit": 40} if model == "path-delay" else {},
        pattern_source="random",
        pattern_count=6,
        seed=seed + 1,
        run_atpg=True,
        compact=True,
        drop_detected=drop_detected,
    )
    base = Campaign(spec).run(circuit)
    sharded = ShardedCampaign(spec, shards=shards, max_workers=0).run(circuit)
    assert sharded.detections == base.detections
    assert sharded.detected_faults == base.detected_faults
    assert sharded.tests == base.tests
    assert [f.key for f in sharded.faults] == [f.key for f in base.faults]
    assert sharded.compaction.selected_indices == base.compaction.selected_indices
    assert sharded.compacted_tests == base.compacted_tests
    if base.atpg_phase is not None:
        assert sharded.atpg_phase.skipped == base.atpg_phase.skipped
        assert [o.fault.key for o in sharded.atpg_phase.outcomes] == [
            o.fault.key for o in base.atpg_phase.outcomes
        ]
    # The whole report payload (runtimes aside) is byte-identical.
    assert sharded.as_dict(include_runtime=False) == base.as_dict(include_runtime=False)


@given(st.integers(min_value=0, max_value=10_000), st.sampled_from(SHARD_COUNTS), st.booleans())
@settings(max_examples=8, deadline=None)
def test_sharded_campaign_equals_unsharded_stuck_at(seed, shards, drop_detected):
    _sharded_equality_case("stuck-at", seed, shards, drop_detected)


@given(st.integers(min_value=0, max_value=10_000), st.sampled_from(SHARD_COUNTS), st.booleans())
@settings(max_examples=8, deadline=None)
def test_sharded_campaign_equals_unsharded_transition(seed, shards, drop_detected):
    _sharded_equality_case("transition", seed, shards, drop_detected)


@given(st.integers(min_value=0, max_value=10_000), st.sampled_from(SHARD_COUNTS), st.booleans())
@settings(max_examples=8, deadline=None)
def test_sharded_campaign_equals_unsharded_path_delay(seed, shards, drop_detected):
    _sharded_equality_case("path-delay", seed, shards, drop_detected)


@given(st.integers(min_value=0, max_value=10_000), st.sampled_from(SHARD_COUNTS), st.booleans())
@settings(max_examples=8, deadline=None)
def test_sharded_campaign_equals_unsharded_obd(seed, shards, drop_detected):
    _sharded_equality_case("obd", seed, shards, drop_detected)


# --------------------------------------------------------------------------- #
# Excitation-rule invariants (Sections 4.1 / 5).
# --------------------------------------------------------------------------- #
@given(st.sampled_from(SIMPLE_GATES), st.data())
def test_obd_excitation_implies_em_exercise_and_output_switch(gate_type, data):
    width = gate_type.num_inputs
    v1 = data.draw(pattern_strategy(width))
    v2 = data.draw(pattern_strategy(width))
    if v1 == v2:
        return
    sequence = (v1, v2)
    for site in excited_sites(gate_type, sequence, mode="obd"):
        assert is_exercised_em(gate_type, site, sequence)
        assert output_switches(gate_type, sequence)


@given(st.sampled_from(SIMPLE_GATES), st.data())
def test_at_most_one_parallel_pullup_site_excited_per_rising_edge(gate_type, data):
    """For NAND-like gates, a rising output excites at most one PMOS defect."""
    if gate_type not in (GateType.NAND2, GateType.NAND3):
        return
    width = gate_type.num_inputs
    v1 = data.draw(pattern_strategy(width))
    v2 = data.draw(pattern_strategy(width))
    if v1 == v2:
        return
    pmos_sites = [s for s in excited_sites(gate_type, (v1, v2)) if s.startswith("P")]
    assert len(pmos_sites) <= 1


# --------------------------------------------------------------------------- #
# Progression-model invariants.
# --------------------------------------------------------------------------- #
@given(
    st.sampled_from(["n", "p"]),
    st.floats(min_value=0.0, max_value=27 * 3600.0),
    st.floats(min_value=0.0, max_value=27 * 3600.0),
)
def test_progression_is_monotonic_in_time(polarity, t1, t2):
    model = ProgressionModel(polarity)
    early, late = min(t1, t2), max(t1, t2)
    assert model.saturation_current_at(late) >= model.saturation_current_at(early)
    assert model.resistance_at(late) <= model.resistance_at(early)
    assert model.stage_at(late).order >= model.stage_at(early).order


@given(st.sampled_from(["n", "p"]), st.sampled_from(list(BreakdownStage)))
def test_stage_times_lie_inside_the_progression(polarity, stage):
    model = ProgressionModel(polarity)
    t = model.time_of_stage(stage)
    assert model.onset_time <= t <= model.hbd_time


# --------------------------------------------------------------------------- #
# Analog substrate invariants.
# --------------------------------------------------------------------------- #
@given(
    st.floats(min_value=10.0, max_value=1e6),
    st.floats(min_value=10.0, max_value=1e6),
    st.floats(min_value=0.1, max_value=10.0),
)
@settings(max_examples=25, deadline=None)
def test_resistive_divider_solution(r1, r2, vin):
    circuit = Circuit("divider")
    circuit.add_voltage_source("vin", "a", "0", dc=vin)
    circuit.add_resistor("r1", "a", "b", r1)
    circuit.add_resistor("r2", "b", "0", r2)
    op = operating_point(circuit)
    expected = vin * r2 / (r1 + r2)
    assert abs(op.voltage("b") - expected) < 1e-6 + 1e-3 * abs(expected)


@given(st.lists(st.floats(min_value=-5.0, max_value=5.0), min_size=2, max_size=40))
@settings(max_examples=50, deadline=None)
def test_waveform_crossings_alternate(values):
    wave = Waveform(np.arange(len(values), dtype=float), np.array(values))
    rising = wave.crossings(0.0, "rising")
    falling = wave.crossings(0.0, "falling")
    # Crossings at identical times (the signal touching the threshold exactly
    # at a sample point produces a rising and a falling crossing at the same
    # instant) are excluded: their relative order is arbitrary.
    touches = set(rising) & set(falling)
    merged = sorted(
        [(t, "r") for t in rising if t not in touches]
        + [(t, "f") for t in falling if t not in touches]
    )
    # The remaining crossings of the same threshold must alternate direction.
    for (_, kind_a), (_, kind_b) in zip(merged, merged[1:]):
        assert kind_a != kind_b
