"""Tests for the fault models, PODEM, two-pattern / OBD ATPG and fault simulation."""

from __future__ import annotations

import pytest

from repro.atpg import (
    CoverageReport,
    DetectionReport,
    PodemOptions,
    coverage_from_report,
    exhaustive_pairs,
    exhaustive_patterns,
    generate_obd_test,
    generate_path_delay_test,
    generate_stuck_at_test,
    generate_transition_test,
    greedy_compaction,
    justify,
    obd_fault_detected,
    path_delay_fault_detected,
    random_pairs,
    random_patterns,
    run_obd_atpg,
    simulate_obd,
    simulate_path_delay,
    simulate_stuck_at,
    simulate_transition,
    simulate_with_forced_net,
    single_input_change_pairs,
    transition_fault_detected,
)
from repro.atpg.values import D, DBAR, ONE, X, ZERO, evaluate_gate_values, from_bit
from repro.faults import (
    ObdFault,
    PathDelayFault,
    StuckAtFault,
    TransitionFault,
    collapse_ratio,
    collapse_stuck_at_faults,
    is_sensitized,
    obd_equivalence_groups,
    obd_fault_universe,
    path_delay_universe,
    stuck_at_universe,
    transition_fault_universe,
)
from repro.logic import GateType, simulate_pattern, two_to_one_mux


class TestFaultModels:
    def test_stuck_at_universe_size(self, c17_circuit):
        assert len(stuck_at_universe(c17_circuit)) == 2 * len(c17_circuit.nets())

    def test_stuck_at_key_and_eq(self):
        assert StuckAtFault("n1", 0) == StuckAtFault("n1", 0)
        assert StuckAtFault("n1", 0) != StuckAtFault("n1", 1)
        assert StuckAtFault("n1", 1).key == "n1/sa1"
        with pytest.raises(ValueError):
            StuckAtFault("n1", 2)

    def test_transition_fault_values(self):
        str_fault = TransitionFault("n1", "slow-to-rise")
        assert str_fault.launch_value == 0 and str_fault.final_value == 1
        stf_fault = TransitionFault("n1", "slow-to-fall")
        assert stf_fault.launch_value == 1
        with pytest.raises(ValueError):
            TransitionFault("n1", "slow")

    def test_transition_universe(self, c17_circuit):
        assert len(transition_fault_universe(c17_circuit)) == 2 * len(c17_circuit.nets())

    def test_obd_universe_counts(self, fa_sum):
        assert len(obd_fault_universe(fa_sum, gate_types=[GateType.NAND2])) == 56
        assert len(obd_fault_universe(fa_sum)) == 84

    def test_obd_fault_properties(self):
        fault = ObdFault("g1", GateType.NAND2, "PA")
        assert fault.polarity == "p"
        assert fault.output_edge == "rising"
        assert fault.local_sequences == (((1, 1), (0, 1)),)

    def test_path_delay_universe_and_sensitization(self):
        mux = two_to_one_mux()
        faults = path_delay_universe(mux)
        assert len(faults) > 0
        fault = PathDelayFault(("D0", "t0", "Y"), "rising")
        # D0 rising with S=0 selects D0; the path toggles end to end.
        assert is_sensitized(mux, fault, (0, 0, 0), (1, 0, 0))
        assert not is_sensitized(mux, fault, (0, 0, 1), (1, 0, 1))

    def test_stuck_at_collapsing_reduces_count(self, c17_circuit):
        collapsed = collapse_stuck_at_faults(c17_circuit)
        assert len(collapsed) < len(stuck_at_universe(c17_circuit))
        assert 0.0 < collapse_ratio(c17_circuit) < 1.0

    def test_obd_equivalence_groups(self, fa_sum):
        faults = obd_fault_universe(fa_sum, gate_types=[GateType.NAND2])
        groups = obd_equivalence_groups(faults)
        # Each NAND contributes 3 groups: {NA, NB}, {PA}, {PB}.
        assert len(groups) == 14 * 3
        sizes = sorted(len(v) for v in groups.values())
        assert sizes.count(2) == 14


class TestFiveValuedAlgebra:
    def test_basic_values(self):
        assert str(D) == "D" and str(DBAR) == "D'"
        assert D.is_error and not ONE.is_error
        assert from_bit(None) == X and from_bit(1) == ONE

    def test_nand_with_error_input(self):
        assert evaluate_gate_values(GateType.NAND2, [D, ONE]) == DBAR
        assert evaluate_gate_values(GateType.NAND2, [D, ZERO]) == ONE
        assert evaluate_gate_values(GateType.NAND2, [D, X]).good is None

    def test_inverter_propagates_error(self):
        assert evaluate_gate_values(GateType.INV, [D]) == DBAR
        assert evaluate_gate_values(GateType.INV, [DBAR]) == D

    def test_complex_gate_three_valued(self):
        assert evaluate_gate_values(GateType.AOI21, [ONE, ONE, X]) == ZERO
        assert evaluate_gate_values(GateType.OAI21, [ZERO, ZERO, X]) == ONE


class TestPodem:
    def test_c17_full_stuck_at_coverage(self, c17_circuit):
        faults = list(stuck_at_universe(c17_circuit))
        patterns = []
        for fault in faults:
            result = generate_stuck_at_test(c17_circuit, fault)
            assert result.success, fault.key
            patterns.append(tuple(result.pattern[n] for n in c17_circuit.primary_inputs))
        report = simulate_stuck_at(c17_circuit, patterns, faults)
        assert coverage_from_report("sa", report).coverage == 1.0

    def test_generated_test_actually_detects(self, fa_sum):
        fault = StuckAtFault("z1", 0)
        result = generate_stuck_at_test(fa_sum, fault)
        assert result.success
        pattern = tuple(result.pattern[n] for n in fa_sum.primary_inputs)
        report = simulate_stuck_at(fa_sum, [pattern], [fault])
        assert report.detected_faults == [fault.key]

    def test_constraint_satisfaction(self, fa_sum):
        result = justify(fa_sum, {"m4": 1})
        assert result.success
        values = simulate_pattern(fa_sum, tuple(result.pattern[n] for n in fa_sum.primary_inputs))
        assert values["m4"] == 1

    def test_conflicting_constraints_unjustifiable(self, fa_sum):
        # m4_n is the complement of m4: both cannot be 1.
        result = justify(fa_sum, {"m4": 1, "m4_n": 1})
        assert not result.success and not result.aborted

    def test_untestable_fault_reported(self):
        """A redundant stuck-at fault is proven untestable, not aborted."""
        from repro.logic import LogicCircuit

        c = LogicCircuit("redundant")
        c.add_input("a")
        c.add_output("y")
        c.add_gate("inv", GateType.INV, ["a"], "an")
        # y = NAND(a, NOT a) == 1 always: output stuck-at-1 is undetectable.
        c.add_gate("g", GateType.NAND2, ["a", "an"], "y")
        result = generate_stuck_at_test(c, StuckAtFault("y", 1))
        assert not result.success
        assert result.untestable

    def test_constrained_stuck_at(self, fa_sum):
        gate = fa_sum.gate("nand_m4")
        constraints = dict(zip(gate.inputs, (1, 1)))
        result = generate_stuck_at_test(fa_sum, StuckAtFault(gate.output, 1), constraints=constraints)
        assert result.success
        values = simulate_pattern(fa_sum, tuple(result.pattern[n] for n in fa_sum.primary_inputs))
        for net, bit in constraints.items():
            assert values[net] == bit

    def test_backtrack_limit_aborts(self, rca4):
        options = PodemOptions(max_backtracks=0)
        # A hard fault with zero backtracks allowed either succeeds directly
        # or aborts -- it must not claim untestability.
        result = generate_stuck_at_test(rca4, StuckAtFault("COUT", 1), options=options)
        assert result.success or result.aborted


class TestTwoPatternAndObdAtpg:
    def test_transition_test_detects(self, fa_sum):
        fault = TransitionFault("z1", "slow-to-rise")
        result = generate_transition_test(fa_sum, fault)
        assert result.success
        assert transition_fault_detected(fa_sum, fault, (result.test.first, result.test.second))

    def test_obd_test_respects_excitation(self, fa_sum):
        fault = ObdFault("nand_m4", GateType.NAND2, "PA")
        result = generate_obd_test(fa_sum, fault)
        assert result.success
        v1, v2 = result.local_sequence
        gate = fa_sum.gate("nand_m4")
        values1 = simulate_pattern(fa_sum, result.test.first)
        values2 = simulate_pattern(fa_sum, result.test.second)
        assert tuple(values1[n] for n in gate.inputs) == v1
        assert tuple(values2[n] for n in gate.inputs) == v2
        assert obd_fault_detected(fa_sum, fault, (result.test.first, result.test.second))

    def test_obd_atpg_matches_exhaustive_simulation(self, fa_sum):
        faults = obd_fault_universe(fa_sum, gate_types=[GateType.NAND2])
        summary = run_obd_atpg(fa_sum, faults)
        report = simulate_obd(fa_sum, exhaustive_pairs(fa_sum), faults)
        assert {r.fault.key for r in summary.testable} == set(report.detected_faults)
        assert len(summary.aborted) == 0

    def test_self_coupled_nand_pb_untestable(self, fa_sum):
        """A NAND used as an inverter cannot have its PB defect excited."""
        fault = ObdFault("nand_or12_self", GateType.NAND2, "PB")
        result = generate_obd_test(fa_sum, fault)
        assert result.untestable

    def test_obd_summary_describe(self, fa_sum):
        faults = list(obd_fault_universe(fa_sum, gate_types=[GateType.NAND2]))[:4]
        summary = run_obd_atpg(fa_sum, faults)
        assert "4 faults" in summary.describe()

    def test_obd_atpg_skips_already_detected(self, fa_sum):
        """Cross-phase fault dropping: detected faults never reach PODEM."""
        faults = obd_fault_universe(fa_sum, gate_types=[GateType.NAND2])
        report = simulate_obd(fa_sum, single_input_change_pairs(fa_sum), faults)
        summary = run_obd_atpg(fa_sum, faults, already_detected=report.detected_faults)
        assert {f.key for f in summary.skipped} == set(report.detected_faults)
        assert summary.total == len(faults) - len(summary.skipped)
        attempted = {r.fault.key for r in summary.results}
        assert not attempted & set(report.detected_faults)
        assert f"{len(summary.skipped)} skipped" in summary.describe()

    def test_obd_atpg_no_skip_by_default(self, fa_sum):
        faults = list(obd_fault_universe(fa_sum, gate_types=[GateType.NAND2]))[:4]
        summary = run_obd_atpg(fa_sum, faults)
        assert summary.skipped == []
        assert summary.total == 4


class TestPathDelay:
    """The path-delay model's simulate + ATPG path (satellite of ISSUE 2)."""

    def test_simulate_engines_agree(self, fa_sum):
        faults = list(path_delay_universe(fa_sum))
        pairs = exhaustive_pairs(fa_sum)
        packed = simulate_path_delay(fa_sum, pairs, faults, engine="packed")
        serial = simulate_path_delay(fa_sum, pairs, faults, engine="serial")
        assert packed.detections == serial.detections
        assert packed.num_tests == serial.num_tests == len(pairs)

    def test_detection_matches_is_sensitized(self, fa_sum):
        faults = list(path_delay_universe(fa_sum))
        pairs = exhaustive_pairs(fa_sum)[:20]
        report = simulate_path_delay(fa_sum, pairs, faults)
        for fault in faults:
            for index, pair in enumerate(pairs):
                expected = is_sensitized(fa_sum, fault, pair[0], pair[1])
                assert (index in report.detections[fault.key]) == expected
                assert path_delay_fault_detected(fa_sum, fault, pair) == expected

    def test_atpg_generates_sensitizing_pairs(self, fa_sum):
        """Full-adder circuit: every generated test sensitizes its path."""
        for fault in path_delay_universe(fa_sum):
            result = generate_path_delay_test(fa_sum, fault)
            assert result.success, fault.key
            assert is_sensitized(fa_sum, fault, result.test.first, result.test.second)

    def test_atpg_matches_exhaustive_simulation(self, fa_full):
        """ATPG testability agrees with exhaustive two-pattern simulation on
        the complete full adder (whose XOR trees make some paths untestable)."""
        faults = list(path_delay_universe(fa_full))
        report = simulate_path_delay(fa_full, exhaustive_pairs(fa_full), faults)
        for fault in faults:
            result = generate_path_delay_test(fa_full, fault)
            assert not result.aborted, fault.key
            assert result.success == bool(report.detections[fault.key]), fault.key

    def test_drop_detected_first_index_parity(self, fa_sum):
        faults = list(path_delay_universe(fa_sum))
        pairs = exhaustive_pairs(fa_sum)
        full = simulate_path_delay(fa_sum, pairs, faults)
        for engine in ("packed", "serial"):
            dropped = simulate_path_delay(fa_sum, pairs, faults,
                                          drop_detected=True, engine=engine)
            for key, detecting in full.detections.items():
                assert dropped.detections[key] == detecting[:1], (key, engine)


class TestFaultSimulation:
    def test_forced_net_simulation(self, c17_circuit):
        values = simulate_with_forced_net(c17_circuit, (1, 1, 1, 1, 1), "G11", 1)
        assert values["G11"] == 1

    def test_transition_needs_both_patterns(self, fa_sum):
        fault = TransitionFault("m4", "slow-to-rise")
        # Second pattern does not set m4=1 -> no detection.
        assert not transition_fault_detected(fa_sum, fault, ((0, 0, 0), (0, 1, 0)))

    def test_obd_detection_is_input_specific(self, fa_sum):
        """The same output transition through a different input does not count."""
        fault = ObdFault("nand_m4_ab", GateType.NAND2, "PA")
        gate = fa_sum.gate("nand_m4_ab")
        detected_pairs = [
            pair for pair in exhaustive_pairs(fa_sum) if obd_fault_detected(fa_sum, fault, pair)
        ]
        for pair in detected_pairs:
            values1 = simulate_pattern(fa_sum, pair[0])
            values2 = simulate_pattern(fa_sum, pair[1])
            local = (
                tuple(values1[n] for n in gate.inputs),
                tuple(values2[n] for n in gate.inputs),
            )
            assert local == ((1, 1), (0, 1))

    def test_exhaustive_beats_random_for_obd(self, fa_sum):
        faults = obd_fault_universe(fa_sum, gate_types=[GateType.NAND2])
        exhaustive = simulate_obd(fa_sum, exhaustive_pairs(fa_sum), faults)
        random_report = simulate_obd(fa_sum, random_pairs(fa_sum, 10, seed=3), faults)
        assert len(exhaustive.detected_faults) >= len(random_report.detected_faults)

    def test_compaction_covers_all_detected(self, fa_sum):
        faults = obd_fault_universe(fa_sum, gate_types=[GateType.NAND2])
        report = simulate_obd(fa_sum, exhaustive_pairs(fa_sum), faults)
        compaction = greedy_compaction(report)
        assert set(compaction.covered_faults) == set(report.detected_faults)
        assert compaction.size <= report.num_tests

    def test_compaction_tie_break_is_lowest_index(self):
        """Regression: ties on gain pick the lowest test index, independent of
        the order faults (and hence candidate tests) appear in the report."""
        detections = {"f1": [5, 2], "f2": [2], "f3": [5], "f4": [7]}
        result = greedy_compaction(DetectionReport(detections=detections, num_tests=8))
        # Tests 2 and 5 both cover two faults; 2 wins the tie, then 5 and 7.
        assert result.selected_indices == (2, 5, 7)

        shuffled = {"f4": [7], "f3": [5], "f1": [2, 5], "f2": [2]}
        permuted = greedy_compaction(DetectionReport(detections=shuffled, num_tests=8))
        assert permuted.selected_indices == result.selected_indices

    def test_compaction_reports_never_detected_faults(self):
        report = DetectionReport(detections={"a": [0], "b": []}, num_tests=1)
        result = greedy_compaction(report)
        assert result.selected_indices == (0,)
        assert result.covered_faults == ("a",)
        assert result.uncovered_faults == ("b",)

    def test_coverage_report_zero_fault_universe(self):
        cov = coverage_from_report("sa", DetectionReport(detections={}, num_tests=5))
        assert cov.total_faults == 0
        assert cov.coverage == 1.0
        assert cov.test_efficiency == 1.0
        assert cov.undetected == 0
        assert "0/0" in cov.describe() or "0" in cov.describe()

    def test_coverage_report_untestable_and_aborted_accounting(self):
        cov = CoverageReport(
            model="obd", total_faults=10, detected=6, untestable=3, aborted=1, num_tests=4
        )
        assert cov.undetected == 4
        assert cov.coverage == pytest.approx(0.6)
        # Proven-untestable faults count toward efficiency; aborted ones do not.
        assert cov.test_efficiency == pytest.approx(0.9)
        text = cov.describe()
        assert "3 untestable" in text and "1 aborted" in text

    def test_coverage_report_arithmetic(self, c17_circuit):
        faults = list(stuck_at_universe(c17_circuit))
        report = simulate_stuck_at(c17_circuit, exhaustive_patterns(c17_circuit), faults)
        cov = coverage_from_report("sa", report)
        assert cov.total_faults == len(faults)
        assert cov.detected + cov.undetected == cov.total_faults
        assert 0.0 <= cov.coverage <= 1.0
        assert "sa" in cov.describe()

    def test_pattern_sources(self, c17_circuit):
        assert len(exhaustive_patterns(c17_circuit)) == 32
        assert len(random_patterns(c17_circuit, 7, seed=1)) == 7
        pairs = random_pairs(c17_circuit, 5, seed=2)
        assert len(pairs) == 5 and all(a != b for a, b in pairs)
        sic = single_input_change_pairs(c17_circuit)
        assert all(sum(x != y for x, y in zip(a, b)) == 1 for a, b in sic)

    def test_random_pairs_zero_input_circuit_raises(self):
        """Regression: a zero-input circuit used to spin forever."""
        from repro.logic import LogicCircuit, LogicCircuitError

        empty = LogicCircuit("empty")
        with pytest.raises(LogicCircuitError):
            random_pairs(empty, 1)

    def test_random_pairs_tiny_input_space_terminates(self):
        """Regression: with one input only 2 of 4 draws are valid pairs; the
        generator must still return exactly *count* distinct-pattern pairs."""
        from repro.logic import GateType, LogicCircuit

        c = LogicCircuit("tiny")
        c.add_input("a")
        c.add_output("y")
        c.add_gate("g", GateType.INV, ["a"], "y")
        for seed in range(5):
            pairs = random_pairs(c, 200, seed=seed)
            assert len(pairs) == 200
            assert all(v1 != v2 for v1, v2 in pairs)
            assert set(pairs) <= {((0,), (1,)), ((1,), (0,))}

    def test_drop_detected_parity_across_models(self, fa_sum):
        """drop_detected records exactly the first detecting index for every
        fault, in all three models and both engines."""
        pairs = exhaustive_pairs(fa_sum)
        patterns = exhaustive_patterns(fa_sum)
        cases = [
            (simulate_stuck_at, patterns, list(stuck_at_universe(fa_sum))),
            (simulate_transition, pairs, list(transition_fault_universe(fa_sum))),
            (simulate_obd, pairs, list(obd_fault_universe(fa_sum))),
        ]
        for simulate, tests, faults in cases:
            full = simulate(fa_sum, tests, faults)
            for engine in ("packed", "serial"):
                dropped = simulate(fa_sum, tests, faults, drop_detected=True, engine=engine)
                for key, detecting in full.detections.items():
                    expected = detecting[:1]
                    assert dropped.detections[key] == expected, (key, engine)
