"""Unit tests for the sharded multi-process executor and the campaign suite."""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.atpg import (
    DetectionReport,
    concat_phase_reports,
    merge_fault_shards,
    packed_simulate_shard,
)
from repro.campaign import (
    Campaign,
    CampaignError,
    CampaignSpec,
    CampaignSuite,
    InlineExecutor,
    ShardedCampaign,
    SuiteResult,
    partition_faults,
    run_campaign_suite,
    run_sharded_campaign,
)
from repro.faults import stuck_at_universe


# --------------------------------------------------------------------------- #
# Partitioning.
# --------------------------------------------------------------------------- #
class TestPartitioning:
    def test_contiguous_in_universe_order(self, fa_sum):
        faults = list(stuck_at_universe(fa_sum))
        shards = partition_faults(faults, 3)
        assert [f for shard in shards for f in shard] == faults

    def test_ragged_final_shard(self):
        shards = partition_faults(list(range(10)), 3)
        assert [len(s) for s in shards] == [4, 4, 2]

    def test_more_shards_than_faults_leaves_empties(self):
        shards = partition_faults(list(range(3)), 7)
        assert [len(s) for s in shards] == [1, 1, 1, 0, 0, 0, 0]

    def test_single_shard_is_identity(self):
        assert partition_faults(list(range(5)), 1) == [list(range(5))]

    def test_empty_universe(self):
        assert all(not s for s in partition_faults([], 4))

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(CampaignError, match="shards must be >= 1"):
            partition_faults([1, 2], 0)


# --------------------------------------------------------------------------- #
# Report merging.
# --------------------------------------------------------------------------- #
class TestMergeFaultShards:
    def test_union_preserves_lists_and_orders_faults(self):
        a = DetectionReport(detections={"f2": [1, 3]}, num_tests=4)
        b = DetectionReport(detections={"f1": [0]}, num_tests=4)
        merged = merge_fault_shards([a, b], fault_order=["f1", "f2"])
        assert list(merged.detections) == ["f1", "f2"]
        assert merged.detections == {"f1": [0], "f2": [1, 3]}
        assert merged.num_tests == 4

    def test_mismatched_num_tests_rejected(self):
        a = DetectionReport(detections={"f1": []}, num_tests=4)
        b = DetectionReport(detections={"f2": []}, num_tests=5)
        with pytest.raises(ValueError, match="disagree on the test list"):
            merge_fault_shards([a, b])

    def test_overlapping_shards_rejected(self):
        a = DetectionReport(detections={"f1": [0]}, num_tests=2)
        b = DetectionReport(detections={"f1": [1]}, num_tests=2)
        with pytest.raises(ValueError, match="more than one shard"):
            merge_fault_shards([a, b])

    def test_missing_fault_rejected(self):
        a = DetectionReport(detections={"f1": [0]}, num_tests=2)
        with pytest.raises(ValueError, match="missing from every shard"):
            merge_fault_shards([a], fault_order=["f1", "f2"])

    def test_extra_fault_rejected(self):
        a = DetectionReport(detections={"f1": [0], "f2": [1]}, num_tests=2)
        with pytest.raises(ValueError, match="not in the requested fault order"):
            merge_fault_shards([a], fault_order=["f1"])

    def test_empty_input(self):
        merged = merge_fault_shards([])
        assert merged.detections == {} and merged.num_tests == 0

    def test_concat_phase_reports_offsets_indices(self):
        first = DetectionReport(detections={"f1": [0], "f2": []}, num_tests=3)
        second = DetectionReport(detections={"f2": [1]}, num_tests=2)
        merged = concat_phase_reports(["f1", "f2"], [first, second])
        assert merged.detections == {"f1": [0], "f2": [4]}
        assert merged.num_tests == 5


# --------------------------------------------------------------------------- #
# The sharded executor itself.
# --------------------------------------------------------------------------- #
class TestShardedCampaign:
    def test_real_process_pool_matches_single_process(self, fa_sum):
        spec = CampaignSpec(model="stuck-at", pattern_source="random",
                            pattern_count=8, seed=3)
        base = Campaign(spec).run(fa_sum)
        sharded = run_sharded_campaign(fa_sum, spec, shards=3, max_workers=2)
        assert sharded.as_dict(include_runtime=False) == base.as_dict(include_runtime=False)
        assert sharded.tests == base.tests
        assert sharded.compacted_tests == base.compacted_tests

    def test_shared_external_pool_is_reused_not_shut_down(self, fa_sum):
        spec = CampaignSpec(model="stuck-at", pattern_source="random",
                            pattern_count=4, seed=1, run_atpg=False)
        base = Campaign(spec).run(fa_sum)
        with ProcessPoolExecutor(max_workers=2) as pool:
            first = ShardedCampaign(spec, shards=2, pool=pool).run(fa_sum)
            second = ShardedCampaign(spec, shards=4, pool=pool).run(fa_sum)
        expected = base.as_dict(include_runtime=False)
        assert first.as_dict(include_runtime=False) == expected
        assert second.as_dict(include_runtime=False) == expected

    @pytest.mark.parametrize("engine", ["packed", "interp", "serial"])
    def test_all_engines_shard_identically(self, fa_sum, engine):
        spec = CampaignSpec(model="obd", pattern_source="sic", engine=engine)
        base = Campaign(spec).run(fa_sum)
        sharded = ShardedCampaign(spec, shards=4, max_workers=0).run(fa_sum)
        assert sharded.detections == base.detections
        assert sharded.as_dict(include_runtime=False) == base.as_dict(include_runtime=False)

    def test_shards_default_comes_from_spec(self, fa_sum):
        spec = CampaignSpec(model="stuck-at", pattern_source="random",
                            pattern_count=4, seed=0, shards=5, run_atpg=False)
        executor = ShardedCampaign(spec, max_workers=0)
        assert executor.shards == 5
        base = Campaign(spec).run(fa_sum)
        assert executor.run(fa_sum).detections == base.detections

    def test_more_shards_than_faults(self, fa_sum):
        faults = stuck_at_universe(fa_sum)
        spec = CampaignSpec(model="stuck-at", pattern_source="exhaustive",
                            run_atpg=False)
        base = Campaign(spec).run(fa_sum)
        sharded = ShardedCampaign(
            spec, shards=len(faults) + 13, max_workers=0
        ).run(fa_sum)
        assert sharded.as_dict(include_runtime=False) == base.as_dict(include_runtime=False)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(CampaignError, match="shards must be >= 1"):
            ShardedCampaign(CampaignSpec(), shards=0)

    def test_spec_circuit_reference_resolves(self):
        spec = CampaignSpec(model="stuck-at", circuit="c17",
                            pattern_source="random", pattern_count=8, seed=2)
        base = Campaign(spec).run()
        sharded = ShardedCampaign(spec, shards=2, max_workers=0).run()
        assert sharded.as_dict(include_runtime=False) == base.as_dict(include_runtime=False)

    def test_bad_circuit_reference_raises_campaign_error(self):
        spec = CampaignSpec(model="stuck-at", circuit="no-such-circuit")
        with pytest.raises(CampaignError, match="unknown circuit reference"):
            ShardedCampaign(spec, max_workers=0).run()

    def test_spec_or_kwargs_not_both(self, fa_sum):
        with pytest.raises(CampaignError, match="not both"):
            run_sharded_campaign(fa_sum, CampaignSpec(), model="obd")

    def test_inline_executor_runs_submissions_eagerly(self):
        future = InlineExecutor().submit(lambda x: x + 1, 41)
        assert future.done() and future.result() == 42

    def test_packed_simulate_shard_rejects_unknown_model(self, fa_sum):
        with pytest.raises(ValueError, match="unknown packed fault-simulation model"):
            packed_simulate_shard("bridging", fa_sum, [], [])


# --------------------------------------------------------------------------- #
# Campaign suites.
# --------------------------------------------------------------------------- #
class TestCampaignSuite:
    @pytest.fixture(scope="class")
    def suite_result(self) -> SuiteResult:
        return run_campaign_suite(
            ["fa_sum", "c17"],
            models=("stuck-at", "obd"),
            pattern_source="random",
            pattern_count=6,
            seed=4,
            max_workers=2,
        )

    def test_cross_product_shape_and_order(self, suite_result):
        combos = [(e.spec.circuit, e.spec.model) for e in suite_result.entries]
        assert combos == [
            ("fa_sum", "stuck-at"), ("fa_sum", "obd"),
            ("c17", "stuck-at"), ("c17", "obd"),
        ]
        assert [e.index for e in suite_result.entries] == [0, 1, 2, 3]

    def test_entries_match_standalone_campaigns(self, suite_result):
        for entry in suite_result.entries:
            standalone = Campaign(entry.spec).run()
            assert entry.ok, entry.error
            assert entry.result.as_dict(include_runtime=False) == standalone.as_dict(
                include_runtime=False
            )

    def test_consolidated_json_report(self, suite_result):
        payload = json.loads(suite_result.to_json())
        assert payload["schema"] == "repro/campaign-suite/2"
        assert payload["campaigns"] == 4 and payload["failed"] == 0
        row = payload["rows"][0]
        assert row["circuit"] == "fa_sum" and row["model"] == "stuck-at"
        assert 0.0 <= row["coverage"] <= 1.0
        assert row["fault_tests_per_second"] > 0

    def test_consolidated_csv_report(self, suite_result):
        lines = suite_result.to_csv().strip().splitlines()
        assert lines[0].startswith("index,circuit,model,engine,shards")
        assert len(lines) == 1 + 4

    def test_write_report_creates_both_files(self, suite_result, tmp_path):
        json_path, csv_path = suite_result.write_report(tmp_path / "reports")
        assert json.loads(json_path.read_text())["campaigns"] == 4
        assert csv_path.read_text().count("\n") >= 5

    def test_describe_lists_every_campaign(self, suite_result):
        text = suite_result.describe()
        assert "4/4 campaigns ok" in text
        assert text.count("detected") == 4

    def test_failing_entry_is_trapped_not_fatal(self):
        result = CampaignSuite(
            [CampaignSpec(circuit="mult:0"), CampaignSpec(circuit="fa_sum")],
            max_workers=0,
        ).run()
        assert len(result.failed) == 1 and len(result.ok) == 1
        assert "bits >= 1" in result.failed[0].error
        assert "FAILED" in result.describe()
        assert result.rows()[0]["error"] is not None

    def test_sharded_specs_run_inline_inside_workers(self):
        spec = CampaignSpec(model="stuck-at", circuit="c17", shards=3,
                            pattern_source="random", pattern_count=6, seed=9)
        entry = CampaignSuite([spec], max_workers=0).run().entries[0]
        base = Campaign(spec).run()
        assert entry.ok
        assert entry.result.as_dict(include_runtime=False) == base.as_dict(
            include_runtime=False
        )

    def test_suite_requires_circuit_refs(self):
        with pytest.raises(CampaignError, match="has no circuit"):
            CampaignSuite([CampaignSpec(model="stuck-at")])

    def test_empty_suite_rejected(self):
        with pytest.raises(CampaignError, match="empty campaign suite"):
            CampaignSuite([])

    def test_cross_base_and_kwargs_exclusive(self):
        with pytest.raises(CampaignError, match="not both"):
            CampaignSuite.cross(["c17"], base=CampaignSpec(), seed=1)

    def test_cross_sic_battery_over_two_pattern_models(self):
        """The kwargs template must not trip sic validation on the default
        (single-pattern) model when every battery model is two-pattern."""
        suite = CampaignSuite.cross(
            ["fa_sum"], models=("transition", "obd"), pattern_source="sic",
            max_workers=0,
        )
        result = suite.run()
        assert [e.spec.model for e in result.entries] == ["transition", "obd"]
        assert not result.failed
