"""Packed (bit-parallel) fault-simulation engine: unit, fixture and property
tests asserting equivalence with the serial reference engine."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg import (
    exhaustive_pairs,
    exhaustive_patterns,
    packed_simulate_obd,
    packed_simulate_path_delay,
    packed_simulate_stuck_at,
    packed_simulate_transition,
    random_pairs,
    random_patterns,
    serial_simulate_obd,
    serial_simulate_path_delay,
    serial_simulate_stuck_at,
    serial_simulate_transition,
    simulate_obd,
    simulate_stuck_at,
)
from repro.faults import (
    obd_fault_universe,
    path_delay_universe,
    stuck_at_universe,
    transition_fault_universe,
)
from repro.logic import (
    DEFAULT_WORD_BITS,
    WORD_BITS,
    GateType,
    LogicCircuit,
    LogicCircuitError,
    compile_circuit,
    iter_bits,
    pack_pair_blocks,
    pack_pattern_blocks,
    simulate_pattern,
)
from repro.logic.compiled import decode_into

# Gate types every fault model (including OBD site enumeration) supports.
_RANDOM_GATE_TYPES = [
    GateType.INV,
    GateType.NAND2,
    GateType.NAND3,
    GateType.NOR2,
    GateType.NOR3,
    GateType.AOI21,
    GateType.OAI21,
]


def random_circuit(seed: int, num_inputs: int, num_gates: int) -> LogicCircuit:
    """A random combinational DAG over OBD-expandable gate types."""
    rng = random.Random(seed)
    c = LogicCircuit(f"rand{seed}")
    nets = c.add_inputs([f"i{k}" for k in range(num_inputs)])
    for g in range(num_gates):
        gate_type = rng.choice(_RANDOM_GATE_TYPES)
        ins = [rng.choice(nets) for _ in range(gate_type.num_inputs)]
        output = f"n{g}"
        c.add_gate(f"g{g}", gate_type, ins, output)
        nets.append(output)
    # Every net nothing reads becomes a primary output (at least one exists:
    # the last gate's output has no reader).
    read = {n for gate in c for n in gate.inputs}
    for net in c.nets():
        if net not in read and net not in c.primary_inputs:
            c.add_output(net)
    c.validate()
    return c


# --------------------------------------------------------------------------- #
# Compiled-circuit unit tests.
# --------------------------------------------------------------------------- #
class TestCompiledCircuit:
    def test_matches_dict_simulation(self, fa_sum):
        cc = compile_circuit(fa_sum)
        patterns = exhaustive_patterns(fa_sum)
        for base, mask, words in pack_pattern_blocks(patterns, len(fa_sum.primary_inputs)):
            values = cc.evaluate(words, mask)
            for bit, pattern in enumerate(patterns[base : base + WORD_BITS]):
                reference = simulate_pattern(fa_sum, pattern)
                for net, index in cc.net_index.items():
                    assert (values[index] >> bit) & 1 == reference[net], net

    def test_forced_matches_serial_forced(self, c17_circuit):
        from repro.atpg import simulate_with_forced_net

        cc = compile_circuit(c17_circuit)
        patterns = exhaustive_patterns(c17_circuit)
        _, mask, words = next(pack_pattern_blocks(patterns, 5))
        good = cc.evaluate(words, mask)
        net = "G11"
        index = cc.net_index[net]
        faulty = cc.evaluate_forced(good, index, mask, mask)
        _, reachable = cc.cone(index)
        for bit, pattern in enumerate(patterns):
            reference = simulate_with_forced_net(c17_circuit, pattern, net, 1)
            for out in reachable:
                assert (faulty[out] >> bit) & 1 == reference[cc.net_names[out]]

    def test_cone_excludes_driver_and_reaches_outputs(self, c17_circuit):
        cc = compile_circuit(c17_circuit)
        index = cc.net_index["G11"]
        ops, outputs = cc.cone(index)
        assert all(out != index for _code, out, _ins in ops)
        assert set(outputs) == {cc.net_index["G22"], cc.net_index["G23"]}
        # G10 only reaches G22.
        _, g10_outs = cc.cone(cc.net_index["G10"])
        assert set(g10_outs) == {cc.net_index["G22"]}

    def test_pack_blocks_round_trip(self):
        patterns = [(i & 1, (i >> 1) & 1) for i in range(70)]
        blocks = list(pack_pattern_blocks(patterns, 2, WORD_BITS))
        assert [b[0] for b in blocks] == [0, 64]
        assert blocks[0][1] == (1 << 64) - 1 and blocks[1][1] == (1 << 6) - 1
        for base, _mask, words in blocks:
            for bit, pattern in enumerate(patterns[base : base + WORD_BITS]):
                assert tuple((w >> bit) & 1 for w in words) == pattern

    def test_pack_blocks_default_width_is_wide(self):
        """At the wide default, 70 patterns fit one (ragged) block."""
        patterns = [(i & 1, (i >> 1) & 1) for i in range(70)]
        assert 70 < DEFAULT_WORD_BITS
        [(base, mask, words)] = list(pack_pattern_blocks(patterns, 2))
        assert base == 0 and mask == (1 << 70) - 1
        for bit, pattern in enumerate(patterns):
            assert tuple((w >> bit) & 1 for w in words) == pattern

    @pytest.mark.parametrize("word_bits", [1, 3, 64, 1000])
    def test_pack_pair_blocks_streams_any_width(self, word_bits):
        pairs = [
            ((i & 1, (i >> 1) & 1), ((i >> 1) & 1, 1 - (i & 1))) for i in range(10)
        ]
        blocks = list(pack_pair_blocks(pairs, 2, word_bits))
        assert [b[0] for b in blocks] == list(range(0, 10, word_bits))
        seen = []
        for base, mask, w1, w2 in blocks:
            size = min(word_bits, 10 - base)
            assert mask == (1 << size) - 1
            for bit in range(size):
                seen.append(
                    (
                        tuple((w >> bit) & 1 for w in w1),
                        tuple((w >> bit) & 1 for w in w2),
                    )
                )
        assert seen == pairs

    def test_pack_pairs_aligns_blocks(self):
        pairs = [((0, 1), (1, 1)), ((1, 0), (0, 0))]
        [(base, mask, w1, w2)] = list(pack_pair_blocks(pairs, 2))
        assert base == 0 and mask == 0b11
        assert [(w >> 1) & 1 for w in w1] == [1, 0]
        assert [(w >> 1) & 1 for w in w2] == [0, 0]

    def test_bad_word_bits_rejected(self, c17_circuit):
        with pytest.raises(LogicCircuitError, match="word_bits"):
            list(pack_pattern_blocks([(0, 0, 0, 0, 0)], 5, 0))
        with pytest.raises(LogicCircuitError, match="word_bits"):
            compile_circuit(c17_circuit, word_bits=0)

    def test_iter_bits(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b1011001)) == [0, 3, 4, 6]

    def test_decode_into_matches_iter_bits(self):
        import random as _random

        rng = _random.Random(9)
        for _ in range(50):
            word = rng.getrandbits(rng.randrange(1, 1200))
            base = rng.randrange(0, 10_000)
            out = [123]
            decode_into(out, word, base)
            assert out == [123] + [base + bit for bit in iter_bits(word)]

    def test_non_binary_pattern_rejected_like_serial(self, c17_circuit):
        """Both engines reject non-0/1 pattern bits (engine parity)."""
        from repro.logic import LogicCircuitError

        faults = list(stuck_at_universe(c17_circuit))
        bad = [(2, 0, 1, 0, 1)]
        with pytest.raises(LogicCircuitError):
            simulate_stuck_at(c17_circuit, bad, faults)
        with pytest.raises(LogicCircuitError):
            simulate_stuck_at(c17_circuit, bad, faults, engine="serial")


# --------------------------------------------------------------------------- #
# Fixture-based bit-identity (the acceptance-criteria circuits).
# --------------------------------------------------------------------------- #
class TestPackedSerialIdentity:
    @pytest.mark.parametrize("drop", [False, True])
    def test_full_adder_all_models(self, fa_sum, drop):
        patterns = exhaustive_patterns(fa_sum)
        pairs = exhaustive_pairs(fa_sum)
        sa = list(stuck_at_universe(fa_sum))
        packed = packed_simulate_stuck_at(fa_sum, patterns, sa, drop_detected=drop)
        serial = serial_simulate_stuck_at(fa_sum, patterns, sa, drop_detected=drop)
        assert packed.detections == serial.detections
        tr = list(transition_fault_universe(fa_sum))
        packed = packed_simulate_transition(fa_sum, pairs, tr, drop_detected=drop)
        serial = serial_simulate_transition(fa_sum, pairs, tr, drop_detected=drop)
        assert packed.detections == serial.detections
        obd = list(obd_fault_universe(fa_sum))
        packed = packed_simulate_obd(fa_sum, pairs, obd, drop_detected=drop)
        serial = serial_simulate_obd(fa_sum, pairs, obd, drop_detected=drop)
        assert packed.detections == serial.detections

    def test_c17_all_models(self, c17_circuit):
        patterns = exhaustive_patterns(c17_circuit)
        pairs = random_pairs(c17_circuit, 100, seed=5)
        sa = list(stuck_at_universe(c17_circuit))
        assert (
            packed_simulate_stuck_at(c17_circuit, patterns, sa).detections
            == serial_simulate_stuck_at(c17_circuit, patterns, sa).detections
        )
        tr = list(transition_fault_universe(c17_circuit))
        assert (
            packed_simulate_transition(c17_circuit, pairs, tr).detections
            == serial_simulate_transition(c17_circuit, pairs, tr).detections
        )
        obd = list(obd_fault_universe(c17_circuit))
        assert (
            packed_simulate_obd(c17_circuit, pairs, obd).detections
            == serial_simulate_obd(c17_circuit, pairs, obd).detections
        )

    def test_default_entry_points_use_packed(self, c17_circuit):
        """simulate_* with default engine equals both explicit engines."""
        patterns = exhaustive_patterns(c17_circuit)
        faults = list(stuck_at_universe(c17_circuit))
        default = simulate_stuck_at(c17_circuit, patterns, faults)
        explicit = simulate_stuck_at(c17_circuit, patterns, faults, engine="serial")
        assert default.detections == explicit.detections
        with pytest.raises(ValueError):
            simulate_stuck_at(c17_circuit, patterns, faults, engine="warp")

    def test_num_tests_and_coverage_survive_delegation(self, fa_sum):
        pairs = exhaustive_pairs(fa_sum)
        faults = list(obd_fault_universe(fa_sum, gate_types=[GateType.NAND2]))
        report = simulate_obd(fa_sum, pairs, faults)
        assert report.num_tests == len(pairs)
        assert 0.0 < report.coverage <= 1.0


# --------------------------------------------------------------------------- #
# Code generation: generated evaluator and cone kernels vs the interpreter.
# --------------------------------------------------------------------------- #
class TestCodegen:
    def test_generated_evaluate_matches_interpreter(self, c17_circuit):
        codegen = compile_circuit(c17_circuit, word_bits=32)
        interp = compile_circuit(c17_circuit, word_bits=32, codegen=False)
        patterns = exhaustive_patterns(c17_circuit)
        for _base, mask, words in pack_pattern_blocks(patterns, 5, 32):
            assert codegen.evaluate(words, mask) == interp.evaluate(words, mask)

    def test_cone_diff_matches_evaluate_forced(self, c17_circuit):
        for codegen in (True, False):
            cc = compile_circuit(c17_circuit, word_bits=32, codegen=codegen)
            patterns = exhaustive_patterns(c17_circuit)
            _, mask, words = next(pack_pattern_blocks(patterns, 5, 32))
            good = cc.evaluate(words, mask)
            for net_index in range(cc.num_nets):
                for forced in (0, mask, 0b1010):
                    _, outputs = cc.cone(net_index)
                    faulty = cc.evaluate_forced(good, net_index, forced, mask)
                    expected = 0
                    for out in outputs:
                        expected |= faulty[out] ^ good[out]
                    assert cc.cone_diff(good, net_index, forced, mask) == expected

    def test_cone_kernel_cached(self, c17_circuit):
        cc = compile_circuit(c17_circuit)
        index = cc.net_index["G11"]
        assert cc.cone_kernel(index) is cc.cone_kernel(index)

    def test_codegen_flag_and_width_recorded(self, c17_circuit):
        cc = compile_circuit(c17_circuit)
        assert cc.codegen and cc.word_bits == DEFAULT_WORD_BITS
        baseline = compile_circuit(c17_circuit, word_bits=WORD_BITS, codegen=False)
        assert not baseline.codegen and baseline.word_bits == WORD_BITS

    def test_interp_engine_dispatch(self, c17_circuit):
        """engine="interp" runs the packed interpreter baseline."""
        patterns = exhaustive_patterns(c17_circuit)
        faults = list(stuck_at_universe(c17_circuit))
        packed = simulate_stuck_at(c17_circuit, patterns, faults)
        interp = simulate_stuck_at(c17_circuit, patterns, faults, engine="interp")
        assert packed.detections == interp.detections

    def test_wrapper_reuses_prebuilt_compiled(self, c17_circuit):
        patterns = exhaustive_patterns(c17_circuit)
        faults = list(stuck_at_universe(c17_circuit))
        cc = compile_circuit(c17_circuit, word_bits=16)
        via_wrapper = simulate_stuck_at(c17_circuit, patterns, faults, compiled=cc)
        direct = packed_simulate_stuck_at(c17_circuit, patterns, faults, compiled=cc)
        assert via_wrapper.detections == direct.detections

    def test_conflicting_compiled_and_word_bits_rejected(self, c17_circuit):
        patterns = exhaustive_patterns(c17_circuit)
        faults = list(stuck_at_universe(c17_circuit))
        cc = compile_circuit(c17_circuit, word_bits=16)
        with pytest.raises(LogicCircuitError, match="conflicts"):
            packed_simulate_stuck_at(
                c17_circuit, patterns, faults, compiled=cc, word_bits=64
            )
        # Agreement is fine.
        rep = packed_simulate_stuck_at(
            c17_circuit, patterns, faults, compiled=cc, word_bits=16
        )
        assert rep.num_tests == len(patterns)


# --------------------------------------------------------------------------- #
# Engine parity across word widths: generated code vs interpreter vs serial,
# all four fault models, including ragged final blocks and fault dropping.
# --------------------------------------------------------------------------- #
#: 130 tests make ragged final blocks at 64 (2 full + 2 left) and 1000
#: (one short block), and 130 single-pattern blocks at width 1.  Width 63
#: exercises block lengths that are not byte multiples in the decode tables.
_PARITY_TESTS = 130


@pytest.mark.parametrize("word_bits", [1, 63, 64, 256, 1000])
@pytest.mark.parametrize("drop", [False, True])
def test_engine_parity_all_models_across_widths(word_bits, drop):
    circuit = random_circuit(97, 5, 18)
    patterns = random_patterns(circuit, _PARITY_TESTS, seed=7)
    pairs = random_pairs(circuit, _PARITY_TESTS, seed=8)
    engines = (
        compile_circuit(circuit, word_bits=word_bits),
        compile_circuit(circuit, word_bits=word_bits, codegen=False),
    )
    models = [
        (packed_simulate_stuck_at, serial_simulate_stuck_at,
         patterns, list(stuck_at_universe(circuit))),
        (packed_simulate_transition, serial_simulate_transition,
         pairs, list(transition_fault_universe(circuit))),
        (packed_simulate_path_delay, serial_simulate_path_delay,
         pairs, list(path_delay_universe(circuit, limit=60))),
        (packed_simulate_obd, serial_simulate_obd,
         pairs, list(obd_fault_universe(circuit))),
    ]
    for packed_fn, serial_fn, tests, faults in models:
        serial = serial_fn(circuit, tests, faults, drop_detected=drop)
        for cc in engines:
            packed = packed_fn(circuit, tests, faults, drop_detected=drop, compiled=cc)
            assert packed.detections == serial.detections
            assert packed.num_tests == serial.num_tests


# --------------------------------------------------------------------------- #
# Property tests: random circuits, random pattern sets.
# --------------------------------------------------------------------------- #
circuit_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=1, max_value=5),  # inputs
    st.integers(min_value=1, max_value=12),  # gates
)


@settings(max_examples=25, deadline=None)
@given(circuit_params, st.integers(min_value=0, max_value=10_000), st.booleans())
def test_packed_equals_serial_stuck_at(params, pattern_seed, drop):
    circuit = random_circuit(*params)
    patterns = random_patterns(circuit, 70, seed=pattern_seed)
    faults = list(stuck_at_universe(circuit))
    packed = packed_simulate_stuck_at(circuit, patterns, faults, drop_detected=drop)
    serial = serial_simulate_stuck_at(circuit, patterns, faults, drop_detected=drop)
    assert packed.detections == serial.detections
    assert packed.num_tests == serial.num_tests


@settings(max_examples=25, deadline=None)
@given(circuit_params, st.integers(min_value=0, max_value=10_000), st.booleans())
def test_packed_equals_serial_transition(params, pattern_seed, drop):
    circuit = random_circuit(*params)
    pairs = random_pairs(circuit, 70, seed=pattern_seed)
    faults = list(transition_fault_universe(circuit))
    packed = packed_simulate_transition(circuit, pairs, faults, drop_detected=drop)
    serial = serial_simulate_transition(circuit, pairs, faults, drop_detected=drop)
    assert packed.detections == serial.detections


@settings(max_examples=25, deadline=None)
@given(circuit_params, st.integers(min_value=0, max_value=10_000), st.booleans())
def test_packed_equals_serial_obd(params, pattern_seed, drop):
    circuit = random_circuit(*params)
    pairs = random_pairs(circuit, 70, seed=pattern_seed)
    faults = list(obd_fault_universe(circuit))
    packed = packed_simulate_obd(circuit, pairs, faults, drop_detected=drop)
    serial = serial_simulate_obd(circuit, pairs, faults, drop_detected=drop)
    assert packed.detections == serial.detections
