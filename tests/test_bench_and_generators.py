"""Tests for .bench netlist I/O, the parametric generators and the circuit registry."""

from __future__ import annotations

import itertools

import pytest

from repro.campaign import (
    Campaign,
    CampaignError,
    CampaignSpec,
    circuit_names,
    register_circuit,
    resolve_circuit,
    run_campaign,
)
from repro.faults import obd_fault_universe
from repro.logic import (
    GENERATOR_FAMILIES,
    OBD_DAG_GATE_TYPES,
    GateType,
    LogicCircuit,
    LogicCircuitError,
    alu_slice,
    array_multiplier,
    c17,
    carry_lookahead_adder,
    full_adder,
    generate,
    load_bench,
    magnitude_comparator,
    parity_tree,
    parse_bench,
    random_dag,
    ripple_carry_adder,
    save_bench,
    simulate_pattern,
    structurally_equal,
    two_to_one_mux,
    write_bench,
)


def _int_pattern(value: int, bits: int) -> list[int]:
    return [(value >> i) & 1 for i in range(bits)]


def _int_of(values: dict[str, int], names: list[str]) -> int:
    return sum(values[n] << i for i, n in enumerate(names))


#: One representative instance per generator family, plus the library
#: circuits -- the set every round-trip test runs over.
def _family_instances() -> list[LogicCircuit]:
    return [
        parity_tree(8),
        carry_lookahead_adder(4),
        array_multiplier(3),
        magnitude_comparator(3),
        alu_slice(2),
        random_dag(30, num_inputs=5, seed=3),
        random_dag(20, num_inputs=4, seed=9, max_depth=5, gate_types=OBD_DAG_GATE_TYPES),
        c17(),
        full_adder(),
        ripple_carry_adder(3),
        two_to_one_mux(),
    ]


# --------------------------------------------------------------------------- #
# .bench parsing.
# --------------------------------------------------------------------------- #
class TestParseBench:
    def test_basic_netlist_with_comments_and_blank_lines(self):
        c = parse_bench(
            """
            # a comment line
            INPUT(a)
            INPUT(b)   # trailing comment
            OUTPUT(y)

            y = NAND(a, b)
            """,
            name="tiny",
        )
        assert c.name == "tiny"
        assert c.primary_inputs == ["a", "b"]
        assert c.primary_outputs == ["y"]
        [gate] = c.gates
        assert gate.gate_type == GateType.NAND2
        assert gate.inputs == ("a", "b")

    def test_operator_spellings_and_case(self):
        c = parse_bench(
            """
            INPUT(a)
            OUTPUT(x)
            OUTPUT(y)
            OUTPUT(z)
            x = buff(a)
            y = NOT(x)
            z = Buf(y)
            """
        )
        types = {g.output: g.gate_type for g in c}
        assert types == {"x": GateType.BUF, "y": GateType.INV, "z": GateType.BUF}

    def test_three_input_ops_map_to_wide_arities(self):
        c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = NOR(a, b, c)\n"
        )
        [gate] = c.gates
        assert gate.gate_type == GateType.NOR3

    def test_extension_ops_aoi_oai(self):
        c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n"
            "y = AOI21(a, b, c)\nz = OAI21(a, b, c)\n"
        )
        types = {g.output: g.gate_type for g in c}
        assert types == {"y": GateType.AOI21, "z": GateType.OAI21}

    def test_single_input_variadic_collapses_to_buf_or_inv(self):
        c = parse_bench(
            "INPUT(a)\nOUTPUT(x)\nOUTPUT(y)\nx = AND(a)\ny = NOR(a)\n"
        )
        types = {g.output: g.gate_type for g in c}
        assert types == {"x": GateType.BUF, "y": GateType.INV}

    @pytest.mark.parametrize("op,width", [("AND", 5), ("NAND", 4), ("OR", 6), ("NOR", 5)])
    def test_wide_and_or_family_decomposes_correctly(self, op, width):
        names = [f"i{k}" for k in range(width)]
        text = "".join(f"INPUT({n})\n" for n in names)
        text += f"OUTPUT(y)\ny = {op}({', '.join(names)})\n"
        c = parse_bench(text)
        assert all(g.gate_type.num_inputs <= 3 for g in c)
        for bits in itertools.product((0, 1), repeat=width):
            conj = all(bits) if op in ("AND", "NAND") else any(bits)
            expected = int(conj) if op in ("AND", "OR") else int(not conj)
            assert simulate_pattern(c, bits)["y"] == expected

    @pytest.mark.parametrize("op", ["XOR", "XNOR"])
    def test_wide_parity_ops_decompose_correctly(self, op):
        names = [f"i{k}" for k in range(4)]
        text = "".join(f"INPUT({n})\n" for n in names)
        text += f"OUTPUT(y)\ny = {op}({', '.join(names)})\n"
        c = parse_bench(text)
        for bits in itertools.product((0, 1), repeat=4):
            parity = sum(bits) % 2
            expected = parity if op == "XOR" else 1 - parity
            assert simulate_pattern(c, bits)["y"] == expected

    def test_output_can_be_a_primary_input(self):
        c = parse_bench("INPUT(a)\nOUTPUT(a)\n")
        assert c.primary_outputs == ["a"]
        assert len(c) == 0


class TestParseBenchErrors:
    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n", "unknown operator"),
            ("INPUT(a)\nOUTPUT(y)\ny = NOT(a, a)\n", "expects 1 input"),
            ("INPUT(a)\nOUTPUT(y)\nthis is not bench\n", "unparseable"),
            ("INPUT(a)\nOUTPUT(y)\ny = AND(a, )\n", "malformed input list"),
            ("INPUT(a)\nINPUT(a)\n", "net 'a' redefined: first defined at line 1"),
            ("OUTPUT(y)\nOUTPUT(y)\n", "already declared"),
            (
                "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n",
                "net 'y' is already driven .first defined at line 3",
            ),
            ("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n", "undriven net"),
            ("OUTPUT(y)\n", "not driven"),
            ("INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = NOT(y)\n", "loop"),
        ],
    )
    def test_malformed_sources_raise_logic_circuit_error(self, text, fragment):
        with pytest.raises(LogicCircuitError, match=fragment):
            parse_bench(text)

    def test_errors_carry_line_numbers(self):
        with pytest.raises(LogicCircuitError, match="line 3"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")
        # Undriven nets are reported at the statement that reads them...
        with pytest.raises(LogicCircuitError, match="line 3.*ghost"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")
        # ...including nets read only inside a wide-gate decomposition...
        with pytest.raises(LogicCircuitError, match="line 3.*ghost"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, a, a, ghost)\n")
        # ...and undriven primary outputs at their declaration.
        with pytest.raises(LogicCircuitError, match="line 2"):
            parse_bench("INPUT(a)\nOUTPUT(y)\n")


# --------------------------------------------------------------------------- #
# .bench writing and round-trip fidelity.
# --------------------------------------------------------------------------- #
class TestWriteBench:
    def test_writer_emits_canonical_ops_and_header(self):
        text = write_bench(two_to_one_mux())
        assert text.startswith("# mux2\n")
        assert "NOT(S)" in text and "NAND(" in text
        assert write_bench(two_to_one_mux(), header=False).startswith("INPUT(")

    @pytest.mark.parametrize("circuit", _family_instances(), ids=lambda c: c.name)
    def test_round_trip_is_exact_on_every_family(self, circuit):
        text = write_bench(circuit)
        back = parse_bench(text, name=circuit.name)
        assert structurally_equal(circuit, back)
        # Writing the re-parsed circuit reproduces the text byte for byte.
        assert write_bench(back) == text
        # parse(write(parse(write(c)))) is a fixed point.
        again = parse_bench(write_bench(back), name=circuit.name)
        assert structurally_equal(back, again)

    @pytest.mark.parametrize("circuit", _family_instances()[:4], ids=lambda c: c.name)
    def test_round_trip_preserves_function(self, circuit):
        back = parse_bench(write_bench(circuit), name=circuit.name)
        n = len(circuit.primary_inputs)
        for value in range(0, 2**n, max(1, 2**n // 16)):
            pattern = _int_pattern(value, n)
            original = simulate_pattern(circuit, pattern)
            copied = simulate_pattern(back, pattern)
            for out in circuit.primary_outputs:
                assert original[out] == copied[out]

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "fa.bench"
        save_bench(full_adder(), path)
        loaded = load_bench(path)
        assert loaded.name == "fa"  # named after the file stem
        assert structurally_equal(full_adder(), loaded)

    def test_structurally_equal_distinguishes(self):
        assert not structurally_equal(c17(), full_adder())
        a = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        b = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n")
        assert not structurally_equal(a, b)


# --------------------------------------------------------------------------- #
# Generator families: degenerate sizes must raise, functions must be right.
# --------------------------------------------------------------------------- #
class TestGeneratorDegenerateSizes:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: parity_tree(0),
            lambda: parity_tree(1),
            lambda: carry_lookahead_adder(0),
            lambda: carry_lookahead_adder(-3),
            lambda: array_multiplier(0),
            lambda: magnitude_comparator(0),
            lambda: alu_slice(0),
            lambda: random_dag(0),
            lambda: random_dag(10, num_inputs=0),
            lambda: random_dag(10, max_depth=0),
            lambda: random_dag(10, max_fan_in=0),
            lambda: random_dag(10, max_fan_in=4),
            lambda: random_dag(10, gate_types=[GateType.AOI21], max_fan_in=2),
            lambda: generate("no-such-family", 4),
        ],
        ids=[
            "parity-0",
            "parity-1",
            "cla-0",
            "cla-negative",
            "mult-0",
            "cmp-0",
            "alu-0",
            "rdag-0-gates",
            "rdag-0-inputs",
            "rdag-0-depth",
            "rdag-fanin-0",
            "rdag-fanin-4",
            "rdag-empty-palette",
            "unknown-family",
        ],
    )
    def test_degenerate_parameters_raise(self, build):
        with pytest.raises(LogicCircuitError):
            build()


class TestGeneratorFunctions:
    def test_multiplier_multiplies(self):
        m = array_multiplier(3)
        outs = [f"P{i}" for i in range(6)]
        for a in range(8):
            for b in range(8):
                values = simulate_pattern(m, _int_pattern(a, 3) + _int_pattern(b, 3))
                assert _int_of(values, outs) == a * b

    def test_carry_lookahead_adds(self):
        cla = carry_lookahead_adder(4)
        outs = [f"S{i}" for i in range(4)]
        for a in range(16):
            for b in range(16):
                for cin in (0, 1):
                    pattern = _int_pattern(a, 4) + _int_pattern(b, 4) + [cin]
                    values = simulate_pattern(cla, pattern)
                    assert _int_of(values, outs) + (values["COUT"] << 4) == a + b + cin

    def test_parity_tree_is_parity(self):
        p = parity_tree(6)
        for bits in itertools.product((0, 1), repeat=6):
            assert simulate_pattern(p, bits)["PAR"] == sum(bits) % 2

    def test_comparator_compares(self):
        cmp4 = magnitude_comparator(4)
        for a in range(16):
            for b in range(16):
                values = simulate_pattern(cmp4, _int_pattern(a, 4) + _int_pattern(b, 4))
                assert values["EQ"] == int(a == b)
                assert values["GT"] == int(a > b)
                assert values["LT"] == int(a < b)

    def test_alu_slice_all_ops(self):
        alu = alu_slice(2)
        outs = ["Y0", "Y1"]
        ops = {(0, 0): lambda a, b, c: a & b, (0, 1): lambda a, b, c: a | b,
               (1, 0): lambda a, b, c: a ^ b, (1, 1): lambda a, b, c: (a + b + c) % 4}
        for a in range(4):
            for b in range(4):
                for cin in (0, 1):
                    for (s1, s0), fn in ops.items():
                        pattern = _int_pattern(a, 2) + _int_pattern(b, 2) + [cin, s0, s1]
                        values = simulate_pattern(alu, pattern)
                        assert _int_of(values, outs) == fn(a, b, cin)
                        if (s1, s0) == (1, 1):
                            assert values["COUT"] == (a + b + cin) >> 2

    def test_generate_dispatches_by_family_name(self):
        assert set(GENERATOR_FAMILIES) == {"parity", "cla", "mult", "cmp", "alu", "rdag"}
        c = generate("parity", 4)
        assert structurally_equal(c, parity_tree(4))


class TestRandomDag:
    def test_same_seed_reproduces_identical_netlist(self):
        a = random_dag(40, num_inputs=5, seed=11, max_depth=7)
        b = random_dag(40, num_inputs=5, seed=11, max_depth=7)
        assert structurally_equal(a, b)
        assert [g.name for g in a] == [g.name for g in b]

    def test_different_seeds_differ(self):
        a = random_dag(40, num_inputs=5, seed=11)
        b = random_dag(40, num_inputs=5, seed=12)
        assert not structurally_equal(a, b)

    @pytest.mark.parametrize("depth", [1, 3, 6])
    def test_depth_cap_is_respected(self, depth):
        for seed in range(5):
            assert random_dag(25, seed=seed, max_depth=depth).depth <= depth

    def test_fan_in_cap_restricts_palette(self):
        c = random_dag(30, seed=4, max_fan_in=2)
        assert all(g.gate_type.num_inputs <= 2 for g in c)

    def test_every_gate_is_observable(self):
        c = random_dag(30, seed=2)
        outputs = set(c.primary_outputs)
        for gate in c:
            assert c.fanout_cone(gate.output) & outputs

    def test_obd_palette_yields_obd_faults(self):
        c = random_dag(20, seed=6, gate_types=OBD_DAG_GATE_TYPES)
        assert len(obd_fault_universe(c)) > 0


# --------------------------------------------------------------------------- #
# LogicCircuit.stats().
# --------------------------------------------------------------------------- #
class TestCircuitStats:
    def test_stats_of_c17(self):
        s = c17().stats()
        assert (s.num_inputs, s.num_outputs, s.num_gates, s.num_nets) == (5, 2, 6, 11)
        assert s.gate_counts == {"NAND2": 6}
        assert s.depth == 3
        assert s.fanout_histogram == {0: 2, 1: 6, 2: 3}
        assert s.max_fanout == 2

    def test_describe_mentions_the_key_numbers(self):
        text = c17().stats().describe()
        assert "c17" in text and "6 gates" in text and "depth 3" in text


# --------------------------------------------------------------------------- #
# Circuit registry and campaign integration.
# --------------------------------------------------------------------------- #
class TestCircuitRegistry:
    def test_named_and_parametric_resolution(self):
        assert structurally_equal(resolve_circuit("c17"), c17())
        assert structurally_equal(resolve_circuit("rca:3"), ripple_carry_adder(3))
        assert structurally_equal(resolve_circuit("mult:2"), array_multiplier(2))
        assert structurally_equal(resolve_circuit("rdag:20,7"), random_dag(20, seed=7))

    def test_circuit_passes_through(self):
        circuit = c17()
        assert resolve_circuit(circuit) is circuit

    def test_bench_path_resolution(self, tmp_path):
        path = tmp_path / "cmp2.bench"
        save_bench(magnitude_comparator(2), path)
        assert structurally_equal(resolve_circuit(str(path)), magnitude_comparator(2))
        # Path objects (e.g. save_bench's return value) work directly too.
        assert structurally_equal(resolve_circuit(path), magnitude_comparator(2))

    @pytest.mark.parametrize(
        "ref",
        ["nope", "rca", "rca:x", "rca:1,2", "nope:4", "/does/not/exist.bench"],
    )
    def test_bad_references_raise(self, ref):
        with pytest.raises(ValueError):
            resolve_circuit(ref)

    def test_unreadable_bench_path_raises_value_error(self, tmp_path):
        # A directory named *.bench must not leak an OSError upward.
        bad = tmp_path / "dir.bench"
        bad.mkdir()
        with pytest.raises(ValueError, match="cannot read"):
            resolve_circuit(bad)

    def test_register_custom_circuit(self):
        register_circuit("test_only_mux", two_to_one_mux)
        try:
            assert "test_only_mux" in circuit_names()
            assert structurally_equal(resolve_circuit("test_only_mux"), two_to_one_mux())
        finally:
            from repro.campaign.circuits import _NAMED

            _NAMED.pop("test_only_mux", None)

    def test_campaign_spec_accepts_circuit_reference(self):
        spec = CampaignSpec(
            model="stuck-at",
            circuit="cla:3",
            pattern_source="random",
            pattern_count=32,
            run_atpg=False,
        )
        result = run_campaign(spec=spec)
        assert result.circuit_name == "cla3"
        assert result.circuit_stats.num_gates == len(carry_lookahead_adder(3))
        assert "circuit: cla3" in result.describe()
        assert result.as_dict()["circuit_stats"]["gates"] == result.circuit_stats.num_gates

    def test_explicit_circuit_overrides_spec(self):
        spec = CampaignSpec(model="stuck-at", circuit="cla:3", run_atpg=True)
        result = Campaign(spec).run("c17")
        assert result.circuit_name == "c17"

    def test_missing_circuit_is_a_campaign_error(self):
        with pytest.raises(CampaignError, match="no circuit"):
            run_campaign(spec=CampaignSpec(model="stuck-at"))
        with pytest.raises(CampaignError, match="unknown circuit"):
            run_campaign("definitely-not-registered", CampaignSpec(model="stuck-at"))

    def test_degenerate_builder_sizes_become_campaign_errors(self):
        # LogicCircuitError from a builder is normalized like ValueError.
        with pytest.raises(CampaignError, match="bits >= 1"):
            run_campaign("mult:0", CampaignSpec(model="stuck-at"))
