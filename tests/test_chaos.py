"""Tests for the fault-injection harness and the hardened failure paths.

Three layers, mirroring the production stack:

* the injection machinery itself (plans, selectors, deterministic file
  mutation, the process-wide install/environment routes);
* the shard-round failure handling (retry backoff schedule, per-shard
  deadlines, engine degradation, pool rebuild, structured
  ``ShardExecutionError`` taxonomy) driven through ``_collect_round`` with
  hand-built futures -- no real campaigns, so the schedule assertions are
  exact;
* artifact hardening (checkpoint record trailer, cache quarantine) and the
  end-to-end seeded chaos matrix, whose invariant -- bit-identical or a
  structured error -- is the acceptance criterion of the robustness work.
"""

from __future__ import annotations

import json
from concurrent.futures import BrokenExecutor, Future

import pytest

from repro.campaign import Campaign, CampaignError, CampaignSpec
from repro.campaign.errors import ShardExecutionError
from repro.campaign.sharded import RetryPolicy, RoundStats, _collect_round
from repro.service import (
    ChaosExecutor,
    FaultInjector,
    InjectedFault,
    Injection,
    InjectionPlan,
    ResultCache,
    install,
    seeded_matrix,
)
from repro.service.chaos import EXPECTED, run_matrix
from repro.service.checkpoint import CHECKPOINT_SCHEMA, _encode_record, _parse_record
from repro.service.faultinject import PLAN_ENV, active_injector


# --------------------------------------------------------------------------- #
# Injection plans and the injector.
# --------------------------------------------------------------------------- #
class TestInjectionPlan:
    def test_rejects_unknown_kind_and_bad_bounds(self):
        with pytest.raises(ValueError, match="unknown injection kind"):
            Injection("worker.round1", "melt")
        with pytest.raises(ValueError, match="times"):
            Injection("worker.round1", "crash", times=0)
        with pytest.raises(ValueError, match="seconds"):
            Injection("worker.round1", "hang", seconds=-1)

    def test_selectors_must_all_match(self):
        inj = Injection("worker.round1", "crash", shard=1, call=2, tag="c17")
        assert inj.matches("worker.round1", 1, 2, "c17")
        assert not inj.matches("worker.round2", 1, 2, "c17")
        assert not inj.matches("worker.round1", 0, 2, "c17")
        assert not inj.matches("worker.round1", 1, 3, "c17")
        assert not inj.matches("worker.round1", 1, 2, "mult:3")

    def test_json_round_trip(self, tmp_path):
        plan = InjectionPlan(
            injections=(
                Injection("cache.write", "torn", call=0),
                Injection("pool.submit", "hang", seconds=0.5, times=3),
            ),
            seed=42,
            name="round-trip",
        )
        path = plan.dump(tmp_path / "plan.json")
        loaded = InjectionPlan.load(path)
        assert loaded == plan

    def test_malformed_plan_raises_value_error(self):
        with pytest.raises(ValueError, match="malformed fault plan"):
            InjectionPlan.from_json("{not json")
        with pytest.raises(ValueError, match="injections"):
            InjectionPlan.from_json('{"injections": 3}')

    def test_seeded_matrix_is_deterministic_and_complete(self):
        a, b = seeded_matrix(9), seeded_matrix(9)
        assert [p.name for p in a] == [p.name for p in b] == sorted(EXPECTED, key=[
            p.name for p in a].index)
        assert [p.seed for p in a] == [p.seed for p in b]
        assert [p.seed for p in seeded_matrix(10)] != [p.seed for p in a]


class TestFaultInjector:
    def test_fires_at_most_times_and_records(self):
        plan = InjectionPlan((Injection("worker.round1", "crash", shard=0, times=2),))
        injector = FaultInjector(plan)
        for _ in range(2):
            with pytest.raises(InjectedFault) as excinfo:
                injector.fire("worker.round1", shard=0)
            assert excinfo.value.category == "crash"
        injector.fire("worker.round1", shard=0)  # budget spent: no-op
        injector.fire("worker.round1", shard=1)  # selector mismatch: no-op
        assert len(injector.fired) == 2
        assert injector.summary() == {
            "fired": 2, "by_site": {"worker.round1:crash": 2},
        }

    def test_io_error_and_broken_pool_raise_native_types(self):
        injector = FaultInjector(InjectionPlan((
            Injection("cache.read", "io_error"),
            Injection("pool.submit", "broken_pool"),
        )))
        with pytest.raises(OSError):
            injector.fire("cache.read")
        with pytest.raises(BrokenExecutor):
            injector.fire("pool.submit")

    def test_call_selector_counts_per_site(self):
        injector = FaultInjector(InjectionPlan((
            Injection("checkpoint.write", "crash", call=1),
        )))
        injector.fire("checkpoint.write")      # call 0: pass
        injector.fire("cache.write")           # different site: own counter
        with pytest.raises(InjectedFault):
            injector.fire("checkpoint.write")  # call 1: fires

    def test_file_mutation_is_seeded_deterministic(self, tmp_path):
        original = bytes(range(256)) * 4
        outcomes = []
        for run in range(2):
            path = tmp_path / f"blob{run}.bin"
            path.write_bytes(original)
            injector = FaultInjector(InjectionPlan(
                (Injection("cache.write", "corrupt"),), seed=77,
            ))
            injector.fire("cache.write", path=path)
            outcomes.append(path.read_bytes())
        assert outcomes[0] == outcomes[1] != original
        torn = tmp_path / "torn.bin"
        torn.write_bytes(original)
        FaultInjector(InjectionPlan(
            (Injection("checkpoint.write", "torn"),), seed=77,
        )).fire("checkpoint.write", path=torn)
        assert len(torn.read_bytes()) < len(original)

    def test_install_scopes_the_injector(self):
        plan = InjectionPlan((Injection("job.run", "crash"),))
        assert active_injector() is None
        with install(plan) as injector:
            assert active_injector() is injector
        assert active_injector() is None

    def test_environment_route_loads_plan_once_per_path(self, tmp_path, monkeypatch):
        path = InjectionPlan(
            (Injection("job.run", "crash", tag="c17"),), name="env",
        ).dump(tmp_path / "plan.json")
        monkeypatch.setenv(PLAN_ENV, str(path))
        injector = active_injector()
        assert injector is not None and injector.plan.name == "env"
        assert active_injector() is injector  # cached, counters preserved
        # An in-process install wins over the environment plan.
        with install(InjectionPlan(name="inner")) as inner:
            assert active_injector() is inner

    def test_environment_route_tolerates_bad_plan(self, tmp_path, monkeypatch):
        path = tmp_path / "broken.json"
        path.write_text("{not a plan")
        monkeypatch.setenv(PLAN_ENV, str(path))
        assert active_injector() is None


class TestChaosExecutor:
    def test_broken_pool_and_io_error_at_submit(self):
        from repro.campaign import InlineExecutor

        injector = FaultInjector(InjectionPlan((
            Injection("pool.submit", "broken_pool", call=0),
            Injection("pool.submit", "io_error", call=1),
        )))
        pool = ChaosExecutor(InlineExecutor(), injector)
        with pytest.raises(BrokenExecutor):
            pool.submit(lambda: 1)
        with pytest.raises(OSError):
            pool.submit(lambda: 1)
        assert pool.submit(lambda: 1).result() == 1  # chaos exhausted

    def test_hang_swallows_the_task(self):
        from repro.campaign import InlineExecutor

        injector = FaultInjector(InjectionPlan((
            Injection("pool.submit", "hang", call=0),
        )))
        pool = ChaosExecutor(InlineExecutor(), injector)
        future = pool.submit(lambda: 1)
        assert not future.done() and pool.hung == [future]
        assert future.cancel()  # the deadline path can always reclaim it


# --------------------------------------------------------------------------- #
# Shard-round failure handling, driven with hand-built futures.
# --------------------------------------------------------------------------- #
def _ok(value) -> Future:
    future: Future = Future()
    future.set_result(value)
    return future


def _err(exc) -> Future:
    future: Future = Future()
    future.set_exception(exc)
    return future


class TestCollectRoundRetries:
    def test_exponential_backoff_schedule(self):
        calls, sleeps = [], []
        def submit(engine=None):
            calls.append(engine)
            return _err(RuntimeError("boom")) if len(calls) < 3 else _ok(("rec",))
        policy = RetryPolicy(max_retries=2, backoff=0.1, sleep=sleeps.append)
        stats = RoundStats()
        out = _collect_round([(0, submit)], None, None, policy=policy, stats=stats)
        assert out == [("rec",)]
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]
        assert stats.retries == 2 and stats.crashes == 2 and not stats.degraded

    def test_budget_exhaustion_raises_structured_error(self):
        policy = RetryPolicy(max_retries=1, backoff=0.0)
        with pytest.raises(ShardExecutionError) as excinfo:
            _collect_round(
                [(3, lambda engine=None: _err(RuntimeError("boom")))],
                None, None, policy=policy,
            )
        err = excinfo.value
        assert err.category == "crash"
        assert err.shard == 3 and err.attempts == 2
        assert isinstance(err, CampaignError)

    def test_degradation_grants_fresh_budget_and_passes_engine(self):
        calls = []
        def submit(engine=None):
            calls.append(engine)
            return _err(RuntimeError("boom")) if engine is None else _ok(("rec",))
        policy = RetryPolicy(max_retries=0, backoff=0.0, degrade_to="interp")
        stats = RoundStats()
        out = _collect_round([(0, submit)], None, None, policy=policy, stats=stats)
        assert out == [("rec",)]
        assert calls == [None, "interp"]
        assert stats.degraded == {0: "interp"}

    def test_failure_after_degradation_reports_degraded_category(self):
        policy = RetryPolicy(max_retries=0, backoff=0.0, degrade_to="interp")
        with pytest.raises(ShardExecutionError) as excinfo:
            _collect_round(
                [(0, lambda engine=None: _err(RuntimeError("boom")))],
                None, None, policy=policy,
            )
        assert excinfo.value.category == "degraded"

    def test_deadline_expiry_cancels_and_retries(self):
        calls = []
        def submit(engine=None):
            calls.append(engine)
            return Future() if len(calls) == 1 else _ok(("rec",))
        policy = RetryPolicy(max_retries=1, timeout=0.05, backoff=0.0)
        stats = RoundStats()
        out = _collect_round([(0, submit)], None, None, policy=policy, stats=stats)
        assert out == [("rec",)]
        assert stats.timeouts == 1 and stats.retries == 1

    def test_campaign_errors_are_never_retried(self):
        attempts = []
        def submit(engine=None):
            attempts.append(1)
            return _err(CampaignError("deterministic failure"))
        policy = RetryPolicy(max_retries=5, backoff=0.0)
        stats = RoundStats()
        with pytest.raises(CampaignError, match="deterministic failure"):
            _collect_round([(0, submit)], None, None, policy=policy, stats=stats)
        assert attempts == [1] and stats.retries == 0

    def test_broken_executor_triggers_rebuild_then_retry(self):
        rebuilt, calls = [], []
        def submit(engine=None):
            calls.append(1)
            if len(calls) == 1:
                raise BrokenExecutor("pool died at submit")
            return _ok(("rec",))
        policy = RetryPolicy(max_retries=1, backoff=0.0)
        stats = RoundStats()
        out = _collect_round(
            [(0, submit)], None, None,
            policy=policy, stats=stats, rebuild=lambda: rebuilt.append(1),
        )
        assert out == [("rec",)]
        assert rebuilt == [1] and stats.rebuilds == 1


# --------------------------------------------------------------------------- #
# Checkpoint record trailer.
# --------------------------------------------------------------------------- #
class TestCheckpointRecordTrailer:
    def test_round_trip(self):
        payload = {"schema": CHECKPOINT_SCHEMA, "round": 1, "data": [1, 2, 3]}
        assert _parse_record(_encode_record(payload)) == payload

    def test_torn_record_rejected(self):
        text = _encode_record({"schema": CHECKPOINT_SCHEMA, "data": list(range(50))})
        for cut in (1, len(text) // 2, len(text) - 2):
            with pytest.raises(ValueError):
                _parse_record(text[:cut])

    def test_flipped_byte_rejected(self):
        text = _encode_record({"schema": CHECKPOINT_SCHEMA, "value": 123456})
        mangled = text.replace("123456", "123457")
        with pytest.raises(ValueError):
            _parse_record(mangled)

    def test_wrong_length_rejected(self):
        text = _encode_record({"a": 1})
        body, trailer, _ = text.split("\n")
        prefix, digest, _length = trailer.split(":")
        with pytest.raises(ValueError):
            _parse_record(f"{body}\n{prefix}:{digest}:9999\n")


# --------------------------------------------------------------------------- #
# Result-cache quarantine.
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def small_campaign():
    spec = CampaignSpec(
        model="stuck-at", circuit="c17", pattern_source="random",
        pattern_count=4, seed=1, engine="interp",
    )
    return spec, Campaign(spec).run()


class TestCacheQuarantine:
    def test_corrupt_pickle_is_quarantined_miss_then_recovers(
        self, tmp_path, small_campaign
    ):
        spec, result = small_campaign
        cache = ResultCache(tmp_path)
        key = cache.key_for(None, spec)
        path = cache.put(key, result)
        path.write_bytes(b"\x80\x04 definitely not a pickle")
        assert cache.get(key) is None
        assert cache.stats.quarantined == 1 and cache.stats.misses == 1
        moved = list((tmp_path / "quarantine").iterdir())
        assert moved and not path.exists()
        cache.put(key, result)  # recompute-and-overwrite
        assert cache.get(key) is not None
        assert cache.stats.as_dict()["hits"] == 1

    def test_mismatched_sidecar_is_quarantined(self, tmp_path, small_campaign):
        spec, result = small_campaign
        cache = ResultCache(tmp_path)
        key = cache.key_for(None, spec)
        cache.put(key, result)
        sidecar = tmp_path / f"{key}.json"
        sidecar.write_text(json.dumps({"key": "someone-else"}))
        assert cache.get(key) is None
        assert cache.stats.quarantined == 1

    def test_foreign_schema_version_is_plain_miss_not_damage(
        self, tmp_path, small_campaign
    ):
        spec, result = small_campaign
        writer = ResultCache(tmp_path)
        key = writer.key_for(None, spec)
        path = writer.put(key, result)
        reader = ResultCache(tmp_path, schema_version=writer.schema_version + 1)
        assert reader.get(key) is None
        assert reader.stats.quarantined == 0 and path.exists()

    def test_injected_write_error_is_counted_not_raised(
        self, tmp_path, small_campaign
    ):
        spec, result = small_campaign
        cache = ResultCache(tmp_path)
        key = cache.key_for(None, spec)
        with install(InjectionPlan((Injection("cache.write", "io_error"),))):
            cache.put(key, result)
        assert cache.stats.io_errors == 1 and cache.stats.stores == 0

    def test_injected_read_error_is_a_miss(self, tmp_path, small_campaign):
        spec, result = small_campaign
        cache = ResultCache(tmp_path)
        key = cache.key_for(None, spec)
        cache.put(key, result)
        with install(InjectionPlan((Injection("cache.read", "io_error"),))):
            assert cache.get(key) is None
        assert cache.stats.io_errors == 1 and cache.stats.misses == 1
        assert cache.get(key) is not None  # transient: entry intact


# --------------------------------------------------------------------------- #
# The end-to-end chaos matrix: the robustness acceptance criterion.
# --------------------------------------------------------------------------- #
class TestChaosMatrix:
    def test_full_matrix_upholds_the_invariant(self):
        report = run_matrix(seed=0)
        names = [s["name"] for s in report["scenarios"]]
        assert names == [p.name for p in seeded_matrix(0)]
        failures = {
            s["name"]: s["violations"]
            for s in report["scenarios"] if not s["passed"]
        }
        assert report["passed"], failures
        by_name = {s["name"]: s for s in report["scenarios"]}
        # The designated failure scenario produced a structured error...
        assert by_name["corrupt-x-pool"]["outcome"] == "error"
        assert by_name["corrupt-x-pool"]["category"] == "crash"
        # ... the engine scenario completed degraded-but-identical ...
        assert by_name["crash-x-engine"]["degraded"]
        assert by_name["crash-x-engine"]["bit_identical"]
        # ... and the corruption scenarios actually quarantined artifacts.
        assert by_name["corrupt-x-cache"]["cache_stats"]["quarantined"] >= 1
        recovery = by_name["corrupt-x-checkpoint"]["recovery"]
        assert recovery == {"ok": True}

    def test_single_scenario_selection(self):
        report = run_matrix(seed=0, only="crash-x-checkpoint")
        assert [s["name"] for s in report["scenarios"]] == ["crash-x-checkpoint"]
        assert report["passed"]
        with pytest.raises(ValueError, match="no matrix scenario"):
            run_matrix(seed=0, only="does-not-exist")
