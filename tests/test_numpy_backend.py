"""Cross-backend parity and plumbing tests for the numpy array engine.

The numpy backend runs the same generated code as the big-int packed engine
over ``(n_words,)`` uint64 arrays with PPSFP fault batching; every test here
pins the bit-identity contract between the two backends (and the interp and
serial references) across fault models, word widths, fault dropping,
sharding, and the campaign pipeline.
"""

from __future__ import annotations

import pytest

from repro.atpg import (
    ENGINE_BACKENDS,
    NUMPY_SIMULATORS,
    PACKED_SIMULATORS,
    SIMULATOR_BACKENDS,
    compile_for_engine,
    compiled_matches_engine,
    packed_simulate_shard,
    packed_simulate_stuck_at,
    serial_simulate_obd,
    serial_simulate_path_delay,
    serial_simulate_stuck_at,
    serial_simulate_transition,
    simulate_stuck_at,
)
from repro.atpg.random_tpg import random_pairs, random_patterns
from repro.campaign import (
    Campaign,
    CampaignError,
    CampaignSpec,
    get_model,
    run_sharded_campaign,
)
from repro.campaign.sharded import DEGRADE_FALLBACK, RetryPolicy
from repro.faults import (
    obd_fault_universe,
    path_delay_universe,
    stuck_at_universe,
    transition_fault_universe,
)
from repro.logic import LogicCircuitError, generate
from repro.logic.compiled import (
    DEFAULT_NUMPY_WORD_BITS,
    HAVE_NUMPY,
    compile_circuit,
    num_words_for,
    pack_pair_blocks,
    pack_pair_blocks_array,
    pack_pattern_blocks,
    pack_pattern_blocks_array,
    words_to_int,
)

np = pytest.importorskip("numpy")

#: 130 tests leave ragged final blocks at every width in the matrix and
#: exercise non-byte-multiple decode paths at widths 1 and 63.
_PARITY_TESTS = 130


@pytest.fixture(scope="module")
def rdag():
    return generate("rdag", 40, seed=3)


# --------------------------------------------------------------------------- #
# Packing helpers: the array packers must be bit-identical to the int packers.
# --------------------------------------------------------------------------- #
class TestArrayPacking:
    @pytest.mark.parametrize("word_bits", [1, 63, 64, 130, 1000])
    def test_pattern_blocks_match_int_packers(self, rdag, word_bits):
        patterns = random_patterns(rdag, _PARITY_TESTS, seed=11)
        n = len(rdag.primary_inputs)
        ints = list(pack_pattern_blocks(patterns, n, word_bits))
        arrays = list(pack_pattern_blocks_array(patterns, n, word_bits))
        assert len(ints) == len(arrays)
        for (base_i, mask_i, words_i), (base_a, mask_a, matrix) in zip(ints, arrays):
            assert base_i == base_a
            assert mask_i == words_to_int(mask_a)
            # Ragged final blocks get arrays sized to the block, not word_bits.
            block_len = min(word_bits, len(patterns) - base_a)
            assert matrix.shape == (n, num_words_for(block_len))
            for row, word in zip(matrix, words_i):
                assert words_to_int(row) == word

    @pytest.mark.parametrize("word_bits", [1, 63, 64, 1000])
    def test_pair_blocks_match_int_packers(self, rdag, word_bits):
        pairs = random_pairs(rdag, _PARITY_TESTS, seed=12)
        n = len(rdag.primary_inputs)
        ints = list(pack_pair_blocks(pairs, n, word_bits))
        arrays = list(pack_pair_blocks_array(pairs, n, word_bits))
        assert len(ints) == len(arrays)
        for (bi, mi, w1, w2), (ba, ma, a1, a2) in zip(ints, arrays):
            assert bi == ba and mi == words_to_int(ma)
            assert [words_to_int(r) for r in a1] == list(w1)
            assert [words_to_int(r) for r in a2] == list(w2)

    def test_bad_pattern_values_rejected(self):
        with pytest.raises(LogicCircuitError):
            list(pack_pattern_blocks_array([(0, 2)], 2, 64))
        with pytest.raises(LogicCircuitError):
            list(pack_pattern_blocks_array([(0,)], 2, 64))

    def test_bad_word_bits_rejected(self):
        with pytest.raises(LogicCircuitError, match="word_bits"):
            list(pack_pattern_blocks_array([(0, 1)], 2, 0))


# --------------------------------------------------------------------------- #
# Engine registry and compile_for_engine.
# --------------------------------------------------------------------------- #
class TestEngineRegistry:
    def test_backend_registry_shape(self):
        assert set(SIMULATOR_BACKENDS) == {"int", "numpy"}
        assert SIMULATOR_BACKENDS["int"] is PACKED_SIMULATORS
        assert SIMULATOR_BACKENDS["numpy"] is NUMPY_SIMULATORS
        assert set(NUMPY_SIMULATORS) == set(PACKED_SIMULATORS)
        assert ENGINE_BACKENDS == {"packed": "int", "interp": "int", "numpy": "numpy"}

    def test_compile_for_engine_flavors(self, c17_circuit):
        numpy_cc = compile_for_engine(c17_circuit, "numpy", None)
        assert numpy_cc.backend == "numpy"
        assert numpy_cc.codegen and numpy_cc.word_bits == DEFAULT_NUMPY_WORD_BITS
        interp_cc = compile_for_engine(c17_circuit, "interp", None)
        assert interp_cc.backend == "int" and not interp_cc.codegen
        assert compile_for_engine(c17_circuit, "serial", None) is None
        with pytest.raises(ValueError, match="unknown fault-simulation engine"):
            compile_for_engine(c17_circuit, "cuda", None)

    def test_compile_for_engine_honors_word_bits(self, c17_circuit):
        # Regression: the campaign dispatcher once hard-coded
        # word_bits=WORD_BITS, codegen=False regardless of the request.
        for engine in ("packed", "numpy"):
            cc = compile_for_engine(c17_circuit, engine, 192)
            assert cc.word_bits == 192 and cc.num_words == 3
            assert cc.codegen
        assert not compile_for_engine(c17_circuit, "interp", 32).codegen

    def test_compiled_matches_engine(self, c17_circuit):
        cc = compile_circuit(c17_circuit, word_bits=128, backend="numpy")
        assert compiled_matches_engine(cc, "numpy")
        assert compiled_matches_engine(cc, "numpy", word_bits=128)
        assert not compiled_matches_engine(cc, "numpy", word_bits=64)
        assert not compiled_matches_engine(cc, "packed")
        assert compiled_matches_engine(None, "serial")
        assert not compiled_matches_engine(None, "packed")

    def test_shard_driver_infers_backend_from_compiled(self, c17_circuit):
        patterns = random_patterns(c17_circuit, 40, seed=5)
        faults = list(stuck_at_universe(c17_circuit))
        via_int = packed_simulate_shard("stuck-at", c17_circuit, patterns, faults)
        cc = compile_for_engine(c17_circuit, "numpy", 128)
        via_numpy = packed_simulate_shard(
            "stuck-at", c17_circuit, patterns, faults, compiled=cc
        )
        assert via_numpy.detections == via_int.detections

    def test_backend_mismatch_rejected(self, c17_circuit):
        # The low-level drivers are strict: a numpy-flavored compiled circuit
        # handed to the int driver is an error, never a silent reuse.  (The
        # model dispatcher recompiles instead; see TestNumpyCampaign.)
        patterns = random_patterns(c17_circuit, 8, seed=5)
        faults = list(stuck_at_universe(c17_circuit))
        cc = compile_for_engine(c17_circuit, "numpy", None)
        with pytest.raises(LogicCircuitError, match="backend"):
            packed_simulate_stuck_at(c17_circuit, patterns, faults, compiled=cc)


# --------------------------------------------------------------------------- #
# Cross-backend parity: numpy vs packed vs interp vs serial, all four models.
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("word_bits", [1, 63, 64, 1000])
@pytest.mark.parametrize("drop", [False, True])
def test_numpy_parity_all_models_across_widths(rdag, word_bits, drop):
    circuit = rdag
    patterns = random_patterns(circuit, _PARITY_TESTS, seed=7)
    pairs = random_pairs(circuit, _PARITY_TESTS, seed=8)
    numpy_cc = compile_for_engine(circuit, "numpy", word_bits)
    packed_cc = compile_for_engine(circuit, "packed", word_bits)
    interp_cc = compile_circuit(circuit, word_bits=word_bits, codegen=False)
    models = [
        ("stuck-at", serial_simulate_stuck_at,
         patterns, list(stuck_at_universe(circuit))),
        ("transition", serial_simulate_transition,
         pairs, list(transition_fault_universe(circuit))),
        ("path-delay", serial_simulate_path_delay,
         pairs, list(path_delay_universe(circuit, limit=60))),
        ("obd", serial_simulate_obd,
         pairs, list(obd_fault_universe(circuit))),
    ]
    for model, serial_fn, tests, faults in models:
        serial = serial_fn(circuit, tests, faults, drop_detected=drop)
        for cc in (numpy_cc, packed_cc, interp_cc):
            report = SIMULATOR_BACKENDS[cc.backend][model](
                circuit, tests, faults, drop_detected=drop, compiled=cc
            )
            assert report.detections == serial.detections, (model, cc.backend)
            assert report.num_tests == serial.num_tests


# --------------------------------------------------------------------------- #
# Campaign pipeline: engine="numpy" end to end, plus sharding.
# --------------------------------------------------------------------------- #
def _normalized(result):
    payload = result.as_dict(include_runtime=False)
    payload["spec"].pop("engine")
    payload["spec"].pop("word_bits")
    return payload


class TestNumpyCampaign:
    @pytest.mark.parametrize("model", ["stuck-at", "transition", "path-delay", "obd"])
    def test_campaign_matches_packed(self, fa_sum, model):
        def run(engine):
            spec = CampaignSpec(
                model=model, pattern_source="random", pattern_count=24,
                seed=9, engine=engine,
            )
            return Campaign(spec).run(fa_sum)

        assert _normalized(run("numpy")) == _normalized(run("packed"))

    def test_campaign_with_drop_detected(self, fa_sum):
        def run(engine):
            spec = CampaignSpec(
                model="stuck-at", pattern_source="random", pattern_count=24,
                seed=9, engine=engine, drop_detected=True,
            )
            return Campaign(spec).run(fa_sum)

        assert _normalized(run("numpy")) == _normalized(run("packed"))

    def test_custom_word_bits_changes_block_width_not_results(self, fa_sum):
        # Regression for the dispatcher hard-coding the legacy 64-bit width:
        # a non-default word_bits must reach the compiled circuit...
        cc = compile_for_engine(fa_sum, "numpy", 256)
        assert cc.word_bits == 256 and cc.num_words == 4
        # ... and campaign results stay bit-identical across widths.
        def run(word_bits):
            spec = CampaignSpec(
                model="stuck-at", pattern_source="random", pattern_count=24,
                seed=2, engine="numpy", word_bits=word_bits,
            )
            return Campaign(spec).run(fa_sum)

        assert _normalized(run(256)) == _normalized(run(None))

    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_sharded_inline_matches_unsharded_packed(self, fa_sum, shards):
        spec = CampaignSpec(model="stuck-at", pattern_source="random",
                            pattern_count=16, seed=4, engine="numpy")
        base = Campaign(
            CampaignSpec(model="stuck-at", pattern_source="random",
                         pattern_count=16, seed=4, engine="packed")
        ).run(fa_sum)
        sharded = run_sharded_campaign(fa_sum, spec, shards=shards, max_workers=0)
        assert _normalized(sharded) == _normalized(base)

    def test_sharded_real_process_pool(self, fa_sum):
        # Worker processes recompile in-process; everything crossing the
        # pool (specs, fault shards, DetectionReports) must pickle.
        spec = CampaignSpec(model="transition", pattern_source="random",
                            pattern_count=12, seed=6, engine="numpy")
        base = Campaign(spec).run(fa_sum)
        sharded = run_sharded_campaign(fa_sum, spec, shards=3, max_workers=2)
        assert sharded.as_dict(include_runtime=False) == base.as_dict(include_runtime=False)

    def test_model_simulate_accepts_word_bits(self, c17_circuit):
        model = get_model("stuck-at")
        patterns = random_patterns(c17_circuit, 20, seed=3)
        faults = list(stuck_at_universe(c17_circuit))
        default = model.simulate(c17_circuit, patterns, faults, engine="numpy")
        narrow = model.simulate(
            c17_circuit, patterns, faults, engine="numpy", word_bits=8
        )
        assert narrow.detections == default.detections

    def test_model_simulate_recompiles_mismatched_flavor(self, c17_circuit):
        # A packed-flavored compiled circuit handed to engine="numpy" (or the
        # wrong width) is recompiled, never silently reused.
        model = get_model("stuck-at")
        patterns = random_patterns(c17_circuit, 20, seed=3)
        faults = list(stuck_at_universe(c17_circuit))
        wrong = compile_circuit(c17_circuit, word_bits=16)
        report = model.simulate(
            c17_circuit, patterns, faults, engine="numpy", compiled=wrong
        )
        serial = serial_simulate_stuck_at(c17_circuit, patterns, faults)
        assert report.detections == serial.detections


# --------------------------------------------------------------------------- #
# Degradation ladder and the optional-dependency gate.
# --------------------------------------------------------------------------- #
class TestDegradeAndGating:
    def test_fallback_ladder(self):
        assert DEGRADE_FALLBACK == {
            "numpy": "packed", "packed": "interp", "interp": "serial",
        }

    def test_retry_policy_degrades_numpy_to_packed(self):
        spec = CampaignSpec(engine="numpy", allow_degraded=True)
        assert RetryPolicy.for_spec(spec).degrade_to == "packed"
        strict = CampaignSpec(engine="numpy", allow_degraded=False)
        assert RetryPolicy.for_spec(strict).degrade_to is None

    def test_have_numpy_is_true_in_this_environment(self):
        assert HAVE_NUMPY

    def test_spec_validation_without_numpy(self, monkeypatch):
        monkeypatch.setattr("repro.campaign.runner.HAVE_NUMPY", False)
        with pytest.raises(CampaignError, match="repro\\[numpy\\]"):
            CampaignSpec(engine="numpy").validate()
        CampaignSpec(engine="packed").validate()

    def test_compile_without_numpy(self, c17_circuit, monkeypatch):
        monkeypatch.setattr("repro.logic.compiled.HAVE_NUMPY", False)
        with pytest.raises(LogicCircuitError, match="repro\\[numpy\\]"):
            compile_circuit(c17_circuit, backend="numpy")
        compile_circuit(c17_circuit)  # the int backend never needs numpy
