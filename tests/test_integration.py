"""Cross-layer integration tests (transistor level <-> gate level <-> ATPG).

These run real (coarse-step) SPICE simulations, so they are marked slow where
they take more than a couple of seconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.vtc import analyze_vtc
from repro.atpg import generate_obd_test
from repro.cells import build_inverter_dc_circuit, build_nand_harness, characterize_harness
from repro.core import (
    BreakdownStage,
    OBDDefect,
    harness_preparer,
    inject_into_cell,
)
from repro.faults import ObdFault
from repro.logic import GateType, expand_to_transistors, simulate_pattern
from repro.spice import dc_sweep, operating_point


class TestNandDefectDelays:
    """Transistor-level behaviour matches the paper's qualitative Table-1 claims."""

    @pytest.fixture(scope="class")
    def delays(self, tech):
        """Fault-free and NA-defective delays for the falling sequence."""
        results = {}
        for stage in (None, BreakdownStage.MBD1, BreakdownStage.MBD3):
            harness = build_nand_harness(tech, ((0, 1), (1, 1)))
            defect = None if stage is None else OBDDefect("NA", stage)
            run = characterize_harness(
                harness, prepare=harness_preparer(defect), dt=8e-12, capture_window=1.5e-9
            )
            results[stage] = run.measurement
        return results

    @pytest.mark.slow
    def test_nmos_delay_grows_with_stage(self, delays):
        fault_free = delays[None].delay
        mbd1 = delays[BreakdownStage.MBD1].delay
        mbd3 = delays[BreakdownStage.MBD3].delay
        assert fault_free is not None and mbd1 is not None and mbd3 is not None
        assert mbd1 > 1.2 * fault_free
        assert mbd3 > mbd1

    @pytest.mark.slow
    def test_pmos_defect_input_specific(self, tech):
        """PA slows (11,01) but leaves (11,10) at the fault-free value."""
        measurements = {}
        for seq in (((1, 1), (0, 1)), ((1, 1), (1, 0))):
            clean = characterize_harness(build_nand_harness(tech, seq), dt=8e-12)
            faulty = characterize_harness(
                build_nand_harness(tech, seq),
                prepare=harness_preparer(OBDDefect("PA", BreakdownStage.MBD2)),
                dt=8e-12,
            )
            measurements[seq] = (clean.delay, faulty.delay)
        excited_clean, excited_faulty = measurements[((1, 1), (0, 1))]
        unexcited_clean, unexcited_faulty = measurements[((1, 1), (1, 0))]
        assert excited_faulty > 1.5 * excited_clean
        assert abs(unexcited_faulty - unexcited_clean) < 0.2 * unexcited_clean


class TestInverterVtcIntegration:
    def test_nmos_obd_raises_vol(self, tech):
        metrics = {}
        for stage in (None, BreakdownStage.MBD2):
            circuit, cell = build_inverter_dc_circuit(tech)
            if stage is not None:
                inject_into_cell(circuit, cell, OBDDefect("NA", stage))
            sweep = dc_sweep(circuit, "vin", np.linspace(0, tech.vdd, 23), record_nodes=["out"])
            metrics[stage] = analyze_vtc(sweep.transfer_curve("out"), tech.vdd)
        assert metrics[BreakdownStage.MBD2].vol > metrics[None].vol + 0.02
        assert metrics[BreakdownStage.MBD2].voh == pytest.approx(metrics[None].voh, abs=0.05)

    def test_pmos_obd_lowers_voh(self, tech):
        circuit, cell = build_inverter_dc_circuit(tech)
        inject_into_cell(circuit, cell, OBDDefect("PA", BreakdownStage.MBD2))
        sweep = dc_sweep(circuit, "vin", np.linspace(0, tech.vdd, 23), record_nodes=["out"])
        metrics = analyze_vtc(sweep.transfer_curve("out"), tech.vdd)
        assert metrics.voh < tech.vdd - 0.02
        assert metrics.vol == pytest.approx(0.0, abs=0.05)


class TestGateLevelToTransistorLevel:
    def test_expanded_full_adder_matches_logic_simulation(self, fa_sum, tech):
        pattern = (0, 1, 1)
        expanded = expand_to_transistors(
            fa_sum, tech, input_levels=dict(zip(fa_sum.primary_inputs, pattern))
        )
        op = operating_point(expanded.circuit)
        steady = simulate_pattern(fa_sum, pattern)
        for net in fa_sum.nets():
            if net in fa_sum.primary_inputs:
                continue
            voltage = op.voltage(net)
            assert (voltage > tech.half_vdd) == bool(steady[net]), net

    def test_atpg_sequence_justifies_excitation_at_transistor_level(self, fa_sum, tech):
        """The PI sequence found by OBD ATPG really drives the defective gate's
        inputs through the required local cube (checked via DC solutions)."""
        fault = ObdFault("nand_m4", GateType.NAND2, "NA")
        result = generate_obd_test(fa_sum, fault)
        assert result.success
        gate = fa_sum.gate("nand_m4")
        for pattern, local in zip((result.test.first, result.test.second), result.local_sequence):
            expanded = expand_to_transistors(
                fa_sum, tech, input_levels=dict(zip(fa_sum.primary_inputs, pattern))
            )
            op = operating_point(expanded.circuit)
            for net, bit in zip(gate.inputs, local):
                assert (op.voltage(net) > tech.half_vdd) == bool(bit)
