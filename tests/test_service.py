"""Tests for the campaign service stack: checkpoints, cache, async jobs.

The kill-and-resume tests simulate crashes deterministically: a flaky
executor raises after *k* shard submissions (the checkpoint store has by
then persisted the completed shards), and the resumed run goes through a
counting executor that proves only the missing shards were recomputed.
Bit-identity is asserted against the single-process ``Campaign.run`` via
``as_dict(include_runtime=False)``, the same oracle the sharded-executor
tests use.
"""

from __future__ import annotations

import json
import pickle
import time
from concurrent.futures import Future
from dataclasses import replace

import pytest

from repro.campaign import (
    Campaign,
    CampaignError,
    CampaignSpec,
    CampaignSuite,
    InlineExecutor,
    ShardedCampaign,
)
from repro.ioutil import atomic_write_bytes, atomic_write_json, atomic_write_text
from repro.service.checkpoint import _encode_record
from repro.logic import GateType, LogicCircuit, full_adder_sum
from repro.service import (
    SCHEMA_VERSION,
    CampaignService,
    CheckpointStore,
    Injection,
    InjectionPlan,
    JobFailedError,
    JobStatus,
    ResultCache,
    campaign_fingerprint,
    circuit_fingerprint,
    install,
)
from repro.service.faultinject import PLAN_ENV


def baseline(spec: CampaignSpec) -> dict:
    """The single-process oracle payload (runtime fields excluded)."""
    return Campaign(spec).run().as_dict(include_runtime=False)


# --------------------------------------------------------------------------- #
# Atomic writes.
# --------------------------------------------------------------------------- #
class TestAtomicWrites:
    def test_creates_parents_and_content(self, tmp_path):
        path = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        assert json.loads(path.read_text()) == {"v": 2}

    def test_failure_leaves_no_temp_file_and_keeps_original(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"v": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert json.loads(path.read_text()) == {"v": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_bytes_roundtrip(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"\x00\xff")
        assert path.read_bytes() == b"\x00\xff"


# --------------------------------------------------------------------------- #
# Fingerprints: the cache-key invalidation matrix.
# --------------------------------------------------------------------------- #
def _spec(**overrides) -> CampaignSpec:
    fields = dict(
        model="stuck-at", circuit="fa_sum", pattern_source="random",
        pattern_count=8, seed=3,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestFingerprintInvalidation:
    def test_identical_rebuild_shares_key(self):
        a = campaign_fingerprint(full_adder_sum(), _spec())
        b = campaign_fingerprint(full_adder_sum(), _spec())
        assert a == b

    def test_gate_instance_names_do_not_matter(self):
        def build(prefix):
            c = LogicCircuit("same")
            c.add_input("a")
            c.add_input("b")
            c.add_gate(f"{prefix}1", GateType.AND2, ["a", "b"], "y")
            c.add_output("y")
            return c

        assert circuit_fingerprint(build("g")) == circuit_fingerprint(build("h"))

    def test_structural_change_misses(self):
        def build(gate_type):
            c = LogicCircuit("same")
            c.add_input("a")
            c.add_input("b")
            c.add_gate("g", gate_type, ["a", "b"], "y")
            c.add_output("y")
            return c

        spec = _spec()
        assert campaign_fingerprint(build(GateType.AND2), spec) != campaign_fingerprint(
            build(GateType.OR2), spec
        )

    def test_circuit_name_is_part_of_the_key(self):
        a, b = full_adder_sum(), full_adder_sum()
        b.name = "renamed"
        spec = _spec()
        assert campaign_fingerprint(a, spec) != campaign_fingerprint(b, spec)

    @pytest.mark.parametrize(
        "change",
        [
            {"model": "transition"},
            {"circuit": "c17"},
            {"pattern_count": 9},
            {"pattern_source": "exhaustive"},
            {"seed": 4},
            {"engine": "interp"},
            {"engine": "serial"},
            {"word_bits": 16},
            {"shards": 2},
            {"collapse": True},
            {"run_atpg": False},
            {"compact": False},
            {"static_phase": False},
        ],
        ids=lambda change: next(iter(change.items()))[0],
    )
    def test_every_result_bearing_spec_field_misses(self, change):
        circuit = full_adder_sum()
        base = campaign_fingerprint(circuit, _spec())
        assert campaign_fingerprint(circuit, _spec(**change)) != base

    def test_schema_version_bump_misses(self):
        circuit, spec = full_adder_sum(), _spec()
        assert campaign_fingerprint(circuit, spec, schema_version=SCHEMA_VERSION) != (
            campaign_fingerprint(circuit, spec, schema_version=SCHEMA_VERSION + 1)
        )


class TestResultCache:
    def test_roundtrip_is_bit_identical(self, tmp_path):
        spec = _spec()
        cache = ResultCache(tmp_path)
        key, cached = cache.fetch(None, spec)
        assert cached is None and cache.stats.misses == 1
        cache.put(key, Campaign(spec).run())
        key2, hit = cache.fetch(None, spec)
        assert key2 == key
        assert hit is not None and cache.stats.hits == 1
        assert hit.as_dict(include_runtime=False) == baseline(spec)

    def test_identical_rerun_hits_changed_spec_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, _ = cache.fetch(None, _spec())
        cache.put(key, Campaign(_spec()).run())
        assert cache.fetch(None, _spec())[1] is not None
        for change in ({"seed": 99}, {"engine": "interp"}, {"word_bits": 16},
                       {"pattern_count": 7}, {"circuit": "c17"}):
            assert cache.fetch(None, _spec(**change))[1] is None, change

    def test_schema_version_bump_goes_cold(self, tmp_path):
        spec = _spec()
        old = ResultCache(tmp_path)
        key, _ = old.fetch(None, spec)
        old.put(key, Campaign(spec).run())
        new = ResultCache(tmp_path, schema_version=SCHEMA_VERSION + 1)
        assert new.fetch(None, spec)[1] is None
        # Even a forced read under the old key revalidates the version.
        assert new.get(key) is None

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        spec = _spec()
        cache = ResultCache(tmp_path)
        key, _ = cache.fetch(None, spec)
        cache.put(key, Campaign(spec).run())
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        assert cache.get(key) is None

    def test_foreign_payload_with_wrong_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for(None, _spec())
        (tmp_path / f"{key}.pkl").write_bytes(
            pickle.dumps({"schema": "repro/campaign-cache/1",
                          "schema_version": SCHEMA_VERSION,
                          "key": "someone-else", "result": None})
        )
        assert cache.get(key) is None

    def test_invalidate_clear_and_report(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, _ = cache.fetch(None, _spec())
        cache.put(key, Campaign(_spec()).run())
        report = cache.report()
        assert report["entries"] == 1 and report["bytes"] > 0
        assert report["inventory"][0]["circuit"] == "fa_sum"
        assert cache.invalidate(key) is True
        assert cache.invalidate(key) is False
        assert cache.get(key) is None
        key2, _ = cache.fetch(None, _spec(seed=5))
        cache.put(key2, Campaign(_spec(seed=5)).run())
        assert cache.clear() == 1
        assert cache.report()["entries"] == 0
        assert cache.stats.invalidations == 2


# --------------------------------------------------------------------------- #
# Checkpoints: kill-and-resume bit-identity.
# --------------------------------------------------------------------------- #
class CrashAfter(InlineExecutor):
    """Executes shard tasks inline, then dies after *limit* submissions.

    Deterministic stand-in for SIGKILL mid-campaign: the first *limit*
    shards complete (and get checkpointed by the parent), the next
    submission raises out of ``ShardedCampaign.run``.
    """

    def __init__(self, limit: int):
        self.limit = limit
        self.submitted = 0

    def submit(self, fn, /, *args, **kwargs) -> Future:
        if self.submitted >= self.limit:
            raise RuntimeError("simulated crash")
        self.submitted += 1
        return super().submit(fn, *args, **kwargs)


class CountingExecutor(InlineExecutor):
    """Inline executor that records how many shard tasks actually ran."""

    def __init__(self):
        self.submitted = 0

    def submit(self, fn, /, *args, **kwargs) -> Future:
        self.submitted += 1
        return super().submit(fn, *args, **kwargs)


RESUME_MATRIX = [
    ("stuck-at", "packed"),
    ("stuck-at", "interp"),
    ("transition", "packed"),
    ("transition", "interp"),
]


class TestKillAndResume:
    @pytest.mark.parametrize("model,engine", RESUME_MATRIX,
                             ids=[f"{m}-{e}" for m, e in RESUME_MATRIX])
    def test_killed_after_k_shards_resumes_bit_identical(self, model, engine, tmp_path):
        spec = CampaignSpec(
            model=model, circuit="mult:3", pattern_source="random",
            pattern_count=12, seed=7, engine=engine, shards=4,
        )
        ckpt = tmp_path / "ckpt"

        crash = CrashAfter(2)
        with pytest.raises(RuntimeError, match="simulated crash"):
            ShardedCampaign(spec, pool=crash, checkpoint_dir=ckpt).run()
        store = CheckpointStore(ckpt)
        persisted = len(store.shard_files(1)) + len(store.shard_files(2))
        assert persisted == 2, "completed shards must be checkpointed before the crash"

        counter = CountingExecutor()
        resumed = ShardedCampaign(spec, pool=counter, checkpoint_dir=ckpt)
        result = resumed.run()
        assert result.as_dict(include_runtime=False) == baseline(spec)
        summary = resumed.checkpoint_summary
        assert summary["round1_loaded"] + summary["round2_loaded"] == 2
        total_round1 = summary["round1_loaded"] + summary["round1_stored"]
        total_round2 = summary["round2_loaded"] + summary["round2_stored"]
        assert counter.submitted == (total_round1 + total_round2) - 2

    @pytest.mark.parametrize("model,engine", RESUME_MATRIX[:2],
                             ids=[f"{m}-{e}" for m, e in RESUME_MATRIX[:2]])
    def test_crash_mid_round2_resumes_bit_identical(self, model, engine, tmp_path):
        spec = CampaignSpec(
            model=model, circuit="fa_sum", pattern_source="random",
            pattern_count=4, seed=1, engine=engine, shards=3,
        )
        ckpt = tmp_path / "ckpt"
        with pytest.raises(RuntimeError):
            # All of round 1 (3 shards) plus one round-2 shard complete.
            ShardedCampaign(spec, pool=CrashAfter(4), checkpoint_dir=ckpt).run()
        store = CheckpointStore(ckpt)
        assert len(store.shard_files(1)) == 3 and len(store.shard_files(2)) == 1

        resumed = ShardedCampaign(spec, pool=InlineExecutor(), checkpoint_dir=ckpt)
        assert resumed.run().as_dict(include_runtime=False) == baseline(spec)
        assert resumed.checkpoint_summary["round1_loaded"] == 3
        assert resumed.checkpoint_summary["round2_loaded"] == 1

    def test_completed_run_replays_entirely_from_disk(self, tmp_path):
        spec = CampaignSpec(
            model="stuck-at", circuit="c17", pattern_source="random",
            pattern_count=8, seed=2, shards=3,
        )
        ckpt = tmp_path / "ckpt"
        first = ShardedCampaign(spec, pool=InlineExecutor(), checkpoint_dir=ckpt)
        expected = first.run().as_dict(include_runtime=False)

        counter = CountingExecutor()
        again = ShardedCampaign(spec, pool=counter, checkpoint_dir=ckpt)
        assert again.run().as_dict(include_runtime=False) == expected
        assert counter.submitted == 0
        summary = again.checkpoint_summary
        assert summary["round1_stored"] == summary["round2_stored"] == 0

    def test_mismatched_campaign_is_rejected(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        spec = CampaignSpec(model="stuck-at", circuit="c17",
                            pattern_source="random", pattern_count=4, shards=2)
        ShardedCampaign(spec, pool=InlineExecutor(), checkpoint_dir=ckpt).run()
        other = replace(spec, seed=spec.seed + 1)
        with pytest.raises(CampaignError, match="different campaign"):
            ShardedCampaign(other, pool=InlineExecutor(), checkpoint_dir=ckpt).run()
        with pytest.raises(CampaignError, match="shard count"):
            ShardedCampaign(spec, shards=3, pool=InlineExecutor(),
                            checkpoint_dir=ckpt).run()

    def test_resume_false_discards_stale_state(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        spec = CampaignSpec(model="stuck-at", circuit="c17",
                            pattern_source="random", pattern_count=4, shards=2)
        ShardedCampaign(spec, pool=InlineExecutor(), checkpoint_dir=ckpt).run()
        other = replace(spec, seed=spec.seed + 1)
        fresh = ShardedCampaign(other, pool=InlineExecutor(),
                                checkpoint_dir=ckpt, resume=False)
        assert fresh.run().as_dict(include_runtime=False) == baseline(other)
        assert fresh.checkpoint_summary["round1_loaded"] == 0

    def test_stale_shard_file_is_recomputed_not_trusted(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        spec = CampaignSpec(model="stuck-at", circuit="c17",
                            pattern_source="random", pattern_count=4, shards=2)
        ShardedCampaign(spec, pool=InlineExecutor(), checkpoint_dir=ckpt).run()
        # Rewrite one shard record with a wrong fault digest (but a valid
        # checksum trailer): the loader must reject it as stale.
        path = CheckpointStore(ckpt).shard_files(1)[0]
        payload = json.loads(path.read_text().split("\n", 1)[0])
        payload["faults_digest"] = "0" * 64
        path.write_text(_encode_record(payload))
        resumed = ShardedCampaign(spec, pool=InlineExecutor(), checkpoint_dir=ckpt)
        assert resumed.run().as_dict(include_runtime=False) == baseline(spec)
        assert resumed.checkpoint_summary["round1_stored"] == 1


# --------------------------------------------------------------------------- #
# The async job service (inline workers: deterministic, process-free).
# --------------------------------------------------------------------------- #
class TestCampaignService:
    def test_submit_result_matches_single_process(self, tmp_path):
        spec = _spec()
        with CampaignService(max_workers=0) as service:
            job_id = service.submit(spec)
            result = service.result(job_id, timeout=60)
        assert result.as_dict(include_runtime=False) == baseline(spec)
        assert service.status(job_id) is JobStatus.DONE

    def test_round_robin_is_fair_across_clients(self):
        with CampaignService(max_workers=0, autostart=False) as service:
            a = [service.submit(_spec(seed=i), client="alice") for i in range(3)]
            b = service.submit(_spec(circuit="c17"), client="bob")
            c = service.submit(_spec(circuit="mux2"), client="carol")
            service.start()
            jobs = {j.id: j for j in service.wait_all(timeout=60)}
        order = sorted(jobs, key=lambda job_id: jobs[job_id].started_seq)
        # alice queued three first, but bob and carol interleave ahead of
        # her backlog: a0, b, c, a1, a2.
        assert order == [a[0], b, c, a[1], a[2]]

    def test_failure_is_isolated_and_carries_traceback(self):
        with CampaignService(max_workers=0) as service:
            bad = service.submit(CampaignSpec(model="stuck-at", circuit="mult:0"))
            good = service.submit(_spec())
            service.wait_all(timeout=60)
            assert service.status(good) is JobStatus.DONE
            job = service.job(bad)
            assert job.status is JobStatus.FAILED
            assert job.error.type == "CampaignError"
            assert "bits >= 1" in job.error.message
            assert "Traceback" in job.error.traceback
            with pytest.raises(JobFailedError, match="bits >= 1"):
                service.result(bad)

    def test_cancel_only_queued_jobs(self):
        with CampaignService(max_workers=0, autostart=False) as service:
            job_id = service.submit(_spec())
            assert service.cancel(job_id) is True
            assert service.status(job_id) is JobStatus.CANCELLED
            assert service.cancel(job_id) is False
            service.start()
            done = service.submit(_spec(seed=11))
            service.result(done, timeout=60)
            assert service.cancel(done) is False

    def test_cache_serves_repeated_submissions(self, tmp_path):
        spec = _spec()
        with CampaignService(max_workers=0, cache_dir=tmp_path / "cache") as service:
            first = service.submit(spec)
            service.result(first, timeout=60)
            second = service.submit(spec)
            result = service.result(second, timeout=60)
            assert not service.job(first).cache_hit
            assert service.job(second).cache_hit
            report = service.report()
        assert result.as_dict(include_runtime=False) == baseline(spec)
        assert report["cache_hits"] == 1
        assert report["cache"]["entries"] == 1

    def test_spec_without_circuit_is_rejected(self):
        with CampaignService(max_workers=0) as service:
            with pytest.raises(CampaignError, match="circuit"):
                service.submit(CampaignSpec(model="stuck-at"))

    def test_closed_service_rejects_submissions(self):
        service = CampaignService(max_workers=0)
        service.close()
        with pytest.raises(CampaignError, match="closed"):
            service.submit(_spec())

    def test_sharded_job_checkpoints_under_fingerprint(self, tmp_path):
        spec = _spec(shards=3)
        root = tmp_path / "ckpt"
        with CampaignService(max_workers=0, checkpoint_root=root) as service:
            result = service.result(service.submit(spec), timeout=60)
        assert result.as_dict(include_runtime=False) == baseline(spec)
        subdirs = [p for p in root.iterdir() if p.is_dir()]
        assert len(subdirs) == 1
        assert (subdirs[0] / "manifest.json").is_file()


# --------------------------------------------------------------------------- #
# Service robustness: watchdog, retries, pool rebuild, shutdown races.
# --------------------------------------------------------------------------- #
class TestServiceRobustness:
    def test_cancel_while_running_returns_false_then_completes(self):
        plan = InjectionPlan((
            Injection("job.run", "hang", tag="fa_sum", seconds=0.4),
        ))
        with install(plan):
            with CampaignService(max_workers=0, autostart=False) as service:
                job_id = service.submit(_spec())
                service.start()
                deadline = time.monotonic() + 10
                while service.status(job_id) is JobStatus.QUEUED:
                    assert time.monotonic() < deadline, "job never started"
                    time.sleep(0.01)
                assert service.cancel(job_id) is False  # running: not interrupted
                result = service.result(job_id, timeout=60)
        assert result.as_dict(include_runtime=False) == baseline(_spec())

    def test_close_cancels_queued_jobs(self):
        service = CampaignService(max_workers=0, autostart=False)
        ids = [service.submit(_spec(seed=i)) for i in range(3)]
        service.close()  # cancel_queued=True: nothing ever ran
        for job_id in ids:
            assert service.status(job_id) is JobStatus.CANCELLED
        with pytest.raises(JobFailedError):
            service.result(ids[0])

    def test_draining_close_finishes_queued_jobs(self):
        service = CampaignService(max_workers=0, autostart=False)
        ids = [service.submit(_spec(seed=i)) for i in range(2)]
        service.start()
        service.close(cancel_queued=False)
        for job_id in ids:
            assert service.status(job_id) is JobStatus.DONE

    def test_injected_crash_is_retried_to_success(self):
        plan = InjectionPlan((Injection("job.run", "crash", tag="fa_sum"),))
        with install(plan):
            with CampaignService(max_workers=0, max_job_retries=1) as service:
                job_id = service.submit(_spec())
                result = service.result(job_id, timeout=60)
                report = service.report()
        assert result.as_dict(include_runtime=False) == baseline(_spec())
        assert service.job(job_id).attempts == 2
        assert report["retries"] == 1
        assert report["by_error_category"] == {}

    def test_watchdog_requeues_stuck_job_and_ignores_late_completion(self):
        # The first attempt hangs well past job_timeout; the watchdog
        # requeues it, and when the stuck attempt finally finishes its
        # completion is discarded as superseded.
        plan = InjectionPlan((
            Injection("job.run", "hang", tag="fa_sum", seconds=1.0),
        ))
        with install(plan):
            with CampaignService(
                max_workers=0, job_timeout=0.2, max_job_retries=1
            ) as service:
                job_id = service.submit(_spec())
                result = service.result(job_id, timeout=60)
                report = service.report()
        assert result.as_dict(include_runtime=False) == baseline(_spec())
        assert service.job(job_id).attempts == 2
        assert report["retries"] == 1
        assert report["by_error_category"] == {}

    def test_watchdog_without_retry_budget_fails_with_timeout_category(self):
        plan = InjectionPlan((
            Injection("job.run", "hang", tag="fa_sum", seconds=1.0),
        ))
        with install(plan):
            with CampaignService(max_workers=0, job_timeout=0.2) as service:
                job_id = service.submit(_spec())
                with pytest.raises(JobFailedError):
                    service.result(job_id, timeout=60)
                report = service.report()
        job = service.job(job_id)
        assert job.status is JobStatus.FAILED
        assert job.error.type == "TimeoutError"
        assert job.error.category == "timeout"
        assert report["by_error_category"] == {"timeout": 1}

    def test_worker_death_fails_structured_and_pool_rebuilds(
        self, tmp_path, monkeypatch
    ):
        # A worker process hard-killed mid-job (the OOM-killer/segfault
        # case) must fail only its own job -- category "crash", no raw
        # traceback explosion -- and the next job runs on a rebuilt pool.
        plan_path = InjectionPlan(
            (Injection("job.run", "exit", tag="c17"),), name="kill-worker",
        ).dump(tmp_path / "plan.json")
        monkeypatch.setenv(PLAN_ENV, str(plan_path))
        with CampaignService(max_workers=1) as service:
            doomed = service.submit(_spec(circuit="c17"))
            with pytest.raises(JobFailedError):
                service.result(doomed, timeout=120)
            survivor = service.submit(_spec())
            result = service.result(survivor, timeout=120)
            report = service.report()
        assert service.job(doomed).error.category == "crash"
        assert result.as_dict(include_runtime=False) == baseline(_spec())
        assert report["pool_rebuilds"] >= 1
        assert report["by_status"] == {"done": 1, "failed": 1}

    def test_degraded_job_provenance_reaches_the_report(self):
        # Two injected crashes exhaust the shard's retry budget, forcing
        # the engine-degradation rung; the job succeeds bit-identically and
        # the provenance surfaces through job info and the service report.
        spec = _spec(shards=2, engine="interp", max_retries=1)
        plan = InjectionPlan((
            Injection("worker.round1", "crash", shard=0, times=2),
        ))
        with install(plan):
            with CampaignService(max_workers=0) as service:
                job_id = service.submit(spec)
                result = service.result(job_id, timeout=60)
                report = service.report()
        payload = result.as_dict(include_runtime=False)
        assert payload.pop("degraded") == {
            "engine": "interp", "fallbacks": {"0": "serial"},
        }
        assert payload == baseline(spec)
        job = service.job(job_id)
        assert job.degraded and job.info()["degraded"]["fallbacks"] == {"0": "serial"}
        assert report["degraded_jobs"] == 1


# --------------------------------------------------------------------------- #
# Suite integration: per-entry tracebacks and the shared result cache.
# --------------------------------------------------------------------------- #
class TestSuiteServiceIntegration:
    def test_failed_entry_keeps_full_traceback(self):
        suite = CampaignSuite([
            _spec(),
            CampaignSpec(model="stuck-at", circuit="mult:0"),
        ], max_workers=0)
        result = suite.run()
        ok, failed = result.entries
        assert ok.ok and ok.traceback is None
        assert not failed.ok
        assert "bits >= 1" in failed.error
        assert "Traceback (most recent call last)" in failed.traceback
        row = result.as_dict()["rows"][1]
        assert "Traceback" in row["traceback"]
        assert "traceback" not in result.as_dict()["rows"][0]

    def test_second_run_hits_cache_on_every_entry(self, tmp_path):
        kwargs = dict(
            models=("stuck-at", "transition"), pattern_source="random",
            pattern_count=6, seed=2, shards=2, max_workers=0,
            cache_dir=tmp_path / "cache",
        )
        cold = CampaignSuite.cross(["c17", "fa_sum"], **kwargs).run()
        warm = CampaignSuite.cross(["c17", "fa_sum"], **kwargs).run()
        assert not cold.cache_hits
        assert len(warm.cache_hits) == len(warm.entries) == 4
        for before, after in zip(cold.entries, warm.entries):
            assert before.result.as_dict(include_runtime=False) == (
                after.result.as_dict(include_runtime=False)
            )
        payload = warm.as_dict()
        assert payload["schema"] == "repro/campaign-suite/2"
        assert payload["cache_hits"] == 4
