"""Differential cross-check harness for the structural ATPG core.

The headline invariants, checked on every circuit-generator family:

* every vector any engine returns as ``tested`` actually detects its fault
  under the packed fault simulator (and the serial reference);
* the D-algorithm and the rewritten PODEM -- two complete searches with
  different decision spaces -- never disagree on redundant-vs-testable;
* every fault the static prover declares untestable is ``proven_redundant``
  (or at worst ``aborted``, never ``tested``) by every structural engine;
* on circuits small enough to enumerate exhaustively, ``proven_redundant``
  matches the brute-force oracle exactly (no false proofs, no misses).
"""

from __future__ import annotations

import pytest

from repro.analysis_static.untestable import prove_stuck_at_untestable
from repro.atpg import (
    ATPG_ENGINES,
    PodemOptions,
    StructuralAtpg,
    StructuralAtpgError,
    StructuralResult,
    atpg_engine_names,
    get_atpg_engine,
    packed_simulate_stuck_at,
    register_atpg_engine,
    serial_simulate_stuck_at,
)
from repro.atpg.structural import ABORTED, PROVEN_REDUNDANT, TESTED
from repro.atpg.structural.logic5 import (
    V0,
    V1,
    VD,
    VDB,
    VX,
    evaluate5,
    justification_cubes,
    propagation_cubes,
)
from repro.campaign import Campaign, CampaignSpec, ShardedCampaign, run_campaign
from repro.campaign.circuits import resolve_circuit
from repro.campaign.errors import CampaignError
from repro.campaign.sharded import run_sharded_campaign
from repro.faults.collapse import collapse_stuck_at_faults
from repro.faults.stuck_at import StuckAtFault, stuck_at_universe
from repro.logic.gates import GateType
from repro.logic.netlist import LogicCircuit

GENEROUS = PodemOptions(max_backtracks=200_000)

#: One small instance per registered circuit-generator family.
FAMILY_REFS = [
    "c17",
    "fa_sum",
    "full_adder",
    "mux2",
    "alu:2",
    "cla:3",
    "cmp:3",
    "mult:3",
    "nand_chain:6",
    "parity:5",
    "rca:3",
    "rdag:60,11",
]

STRUCTURAL = ("d-alg", "podem")
ALL_ENGINES = ("d-alg", "podem", "legacy")


def collapsed_faults(circuit):
    universe = stuck_at_universe(circuit)
    keep = collapse_stuck_at_faults(circuit)
    return [f for f in universe if f in keep]


# --------------------------------------------------------------------------- #
# Five-valued algebra.
# --------------------------------------------------------------------------- #
def test_logic5_classic_identities():
    assert evaluate5(GateType.AND2, (VD, VDB)) == V0
    assert evaluate5(GateType.OR2, (VD, VDB)) == V1
    assert evaluate5(GateType.XOR2, (VD, VD)) == V0
    assert evaluate5(GateType.XOR2, (VD, VDB)) == V1
    assert evaluate5(GateType.NAND2, (VD, V1)) == VDB
    assert evaluate5(GateType.NOR2, (VD, V0)) == VDB
    assert evaluate5(GateType.INV, (VD,)) == VDB
    assert evaluate5(GateType.BUF, (VDB,)) == VDB
    assert evaluate5(GateType.AND2, (V0, VX)) == V0
    assert evaluate5(GateType.AND2, (V1, VX)) == VX


def test_logic5_tables_match_concrete_pair_semantics():
    """Each 5-valued entry is exactly the set-image of its concrete pairs."""
    from itertools import product

    from repro.logic.gates import evaluate_gate

    pairs = {
        V0: ((0, 0),),
        V1: ((1, 1),),
        VD: ((1, 0),),
        VDB: ((0, 1),),
        VX: ((0, 0), (1, 1), (1, 0), (0, 1)),
    }
    back = {(0, 0): V0, (1, 1): V1, (1, 0): VD, (0, 1): VDB}
    for gate_type in (GateType.NAND2, GateType.NOR3, GateType.XOR2, GateType.AOI21):
        arity = gate_type.num_inputs
        for inputs in product((V0, V1, VX, VD, VDB), repeat=arity):
            images = set()
            for concrete in product(*(pairs[v] for v in inputs)):
                g = evaluate_gate(gate_type, [c[0] for c in concrete])
                b = evaluate_gate(gate_type, [c[1] for c in concrete])
                images.add(back[(g, b)])
            expected = images.pop() if len(images) == 1 else VX
            assert evaluate5(gate_type, inputs) == expected, (gate_type, inputs)


def test_justification_and_propagation_cubes_are_sound_and_complete():
    from itertools import product

    domains = (V0, V1, VD, VDB)
    for gate_type in (GateType.NAND2, GateType.OR3, GateType.XOR2, GateType.OAI21):
        arity = gate_type.num_inputs
        per_input = tuple(domains for _ in range(arity))
        for required in (V0, V1, VD, VDB):
            cubes = justification_cubes(gate_type, required, per_input)
            producing = {
                combo
                for combo in product(domains, repeat=arity)
                if evaluate5(gate_type, combo) == required
            }
            # Exact: every cube produces the target, every producing
            # combination over the domains is enumerated.
            assert set(cubes) == producing, (gate_type, required)
        # Propagation cubes: with one error input, each completion over the
        # unknown positions drives an error onto the output.
        for err in (VD, VDB):
            state = (err,) + (VX,) * (arity - 1)
            cubes = propagation_cubes(gate_type, state, per_input)
            expected = {
                combo
                for combo in product(*((v,) if v != VX else domains for v in state))
                if evaluate5(gate_type, combo) in (VD, VDB)
            }
            assert set(cubes) == expected, (gate_type, err)


# --------------------------------------------------------------------------- #
# Registry.
# --------------------------------------------------------------------------- #
def test_registry_mirrors_packed_simulators_shape():
    assert atpg_engine_names() == ("d-alg", "legacy", "podem")
    for name in atpg_engine_names():
        engine = get_atpg_engine(name)
        assert isinstance(engine, StructuralAtpg)
        assert engine.name == name
    with pytest.raises(StructuralAtpgError):
        get_atpg_engine("no-such-engine")
    with pytest.raises(ValueError):
        register_atpg_engine(ATPG_ENGINES["podem"])


def test_unknown_fault_net_raises():
    circuit = resolve_circuit("c17")
    with pytest.raises(ValueError):
        get_atpg_engine("podem").generate(circuit, StuckAtFault("nonexistent", 0))


# --------------------------------------------------------------------------- #
# The differential harness: every generator family, every collapsed fault.
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("ref", FAMILY_REFS)
def test_engines_agree_and_vectors_detect(ref):
    circuit = resolve_circuit(ref)
    faults = collapsed_faults(circuit)
    proofs = prove_stuck_at_untestable(circuit, stuck_at_universe(circuit))
    results: dict[str, dict[str, StructuralResult]] = {}
    for name in ALL_ENGINES:
        engine = get_atpg_engine(name)
        results[name] = {f.key: engine.generate(circuit, f, GENEROUS) for f in faults}

    # 1. Every tested vector detects its fault under packed AND serial sim.
    for name, by_key in results.items():
        tested = [(f, by_key[f.key]) for f in faults if by_key[f.key].status == TESTED]
        if tested:
            patterns = [
                tuple(r.pattern[n] for n in circuit.primary_inputs) for _, r in tested
            ]
            for engine_report in (
                packed_simulate_stuck_at(circuit, patterns, [f for f, _ in tested]),
                serial_simulate_stuck_at(circuit, patterns, [f for f, _ in tested]),
            ):
                for index, (fault, _) in enumerate(tested):
                    assert index in engine_report.detections[fault.key], (
                        f"{name} vector {index} misses {fault.key} on {ref}"
                    )

    # 2. The two complete engines never disagree on redundant-vs-testable.
    for fault in faults:
        statuses = {name: results[name][fault.key].status for name in STRUCTURAL}
        decided = {s for s in statuses.values() if s != ABORTED}
        assert len(decided) <= 1, f"engines disagree on {fault.key} in {ref}: {statuses}"

    # 3. Statically proven faults are never 'tested' by any engine.
    for name, by_key in results.items():
        for key in proofs:
            if key in by_key:
                assert by_key[key].status in (PROVEN_REDUNDANT, ABORTED), (
                    f"{name} generated a test for statically-proven {key} on {ref}"
                )


@pytest.mark.parametrize("ref", ["rdag:30,123", "rdag:35,9", "nand_chain:5", "mux2"])
def test_redundancy_proofs_match_exhaustive_oracle(ref):
    """On exhaustively enumerable circuits, proofs are exact: a fault is
    proven_redundant iff no input vector detects it."""
    circuit = resolve_circuit(ref)
    n = len(circuit.primary_inputs)
    assert n <= 10
    patterns = [tuple((v >> i) & 1 for i in range(n)) for v in range(1 << n)]
    faults = collapsed_faults(circuit)
    report = serial_simulate_stuck_at(circuit, patterns, faults)
    oracle_testable = report.detected_faults
    for name in STRUCTURAL:
        engine = get_atpg_engine(name)
        for fault in faults:
            result = engine.generate(circuit, fault, GENEROUS)
            if fault.key in oracle_testable:
                assert result.status == TESTED, (name, fault.key, result.status)
            else:
                assert result.status == PROVEN_REDUNDANT, (name, fault.key, result.status)


# --------------------------------------------------------------------------- #
# Budget handling: aborted is a distinct, honest outcome.
# --------------------------------------------------------------------------- #
def test_zero_budget_aborts_instead_of_claiming_redundancy():
    circuit = resolve_circuit("mult:4")
    faults = collapsed_faults(circuit)
    tight = PodemOptions(max_backtracks=0)
    for name in STRUCTURAL:
        engine = get_atpg_engine(name)
        statuses = {engine.generate(circuit, f, tight).status for f in faults}
        # With zero backtracks some faults still resolve (implication-only or
        # first-try success), but nothing may claim a proof that needed search.
        assert ABORTED in statuses, f"{name} never aborted at zero budget on mult:4"
        results = [engine.generate(circuit, f, tight) for f in faults]
        for r in results:
            if r.status == PROVEN_REDUNDANT:
                assert r.backtracks == 0


def test_counters_are_populated():
    circuit = resolve_circuit("cla:3")
    fault = collapsed_faults(circuit)[0]
    for name in STRUCTURAL:
        result = get_atpg_engine(name).generate(circuit, fault, GENEROUS)
        assert result.engine == name
        assert result.implications > 0


# --------------------------------------------------------------------------- #
# Verification: a lying engine fails loudly.
# --------------------------------------------------------------------------- #
def test_verification_rejects_non_detecting_vector():
    class LyingEngine(StructuralAtpg):
        name = "lying"

        def _search(self, context, fault, closure, options):
            pattern = {net: 0 for net in context.circuit.primary_inputs}
            return StructuralResult(TESTED, pattern, engine=self.name)

    circuit = resolve_circuit("c17")
    # Pick a fault the all-zeros vector does not detect.
    universe = stuck_at_universe(circuit)
    zeros = [tuple(0 for _ in circuit.primary_inputs)]
    report = serial_simulate_stuck_at(circuit, zeros, universe)
    missed = next(f for f in universe if f.key not in report.detected_faults)
    with pytest.raises(StructuralAtpgError):
        LyingEngine().generate(circuit, missed)


# --------------------------------------------------------------------------- #
# Legacy engine: search give-up is 'aborted', not 'no test exists'.
# --------------------------------------------------------------------------- #
def test_legacy_give_up_reports_aborted_not_untestable():
    from repro.atpg.podem import generate_stuck_at_test

    circuit = resolve_circuit("mult:4")
    hits = 0
    for fault in collapsed_faults(circuit):
        result = generate_stuck_at_test(
            circuit, fault, options=PodemOptions(max_backtracks=1)
        )
        if not result.success and result.aborted:
            hits += 1
            assert not result.untestable
    assert hits > 0, "budget of 1 backtrack never aborted on mult:4"


def test_legacy_structural_adapter_matches_raw_podem():
    circuit = resolve_circuit("parity:5")
    raw_engine = get_atpg_engine("legacy")
    from repro.atpg.podem import generate_stuck_at_test

    for fault in collapsed_faults(circuit):
        adapted = raw_engine.generate(circuit, fault, GENEROUS)
        raw = generate_stuck_at_test(circuit, fault, options=GENEROUS)
        assert adapted.success == raw.success
        assert adapted.aborted == raw.aborted


# --------------------------------------------------------------------------- #
# Campaign threading: spec field, JSON payload, sharded bit-identity.
# --------------------------------------------------------------------------- #
def test_campaign_spec_rejects_unknown_engine():
    with pytest.raises(CampaignError):
        CampaignSpec(model="stuck-at", circuit="c17", atpg_engine="bogus")


@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_campaign_reports_engine_and_outcome_statuses(engine):
    spec = CampaignSpec(
        model="stuck-at",
        circuit="rdag:80,13",
        pattern_source="random",
        pattern_count=8,
        seed=5,
        atpg_engine=engine,
    )
    result = run_campaign(spec.circuit, spec)
    payload = result.as_dict(include_runtime=False)
    assert payload["spec"]["atpg_engine"] == engine
    atpg = payload["atpg_phase"]
    assert atpg["atpg_engine"] == engine
    assert set(atpg["outcomes"].values()) <= {TESTED, PROVEN_REDUNDANT, ABORTED}
    assert len(atpg["outcomes"]) == atpg["attempted"]
    assert atpg["proven_structural"] == atpg["untestable"]
    assert atpg["implications"] >= 0
    counts = {
        TESTED: atpg["testable"],
        PROVEN_REDUNDANT: atpg["untestable"],
        ABORTED: atpg["aborted"],
    }
    for status, expected in counts.items():
        assert sum(1 for s in atpg["outcomes"].values() if s == status) == expected


@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_sharded_campaign_bit_identical_per_engine(engine):
    kwargs = dict(
        model="stuck-at",
        circuit="rdag:100,17",
        pattern_source="random",
        pattern_count=12,
        seed=9,
        atpg_engine=engine,
    )
    single = run_campaign(kwargs["circuit"], CampaignSpec(**kwargs))
    sharded = run_sharded_campaign(kwargs["circuit"], CampaignSpec(**kwargs, shards=3))
    d1 = single.as_dict(include_runtime=False)
    d2 = sharded.as_dict(include_runtime=False)
    d1["spec"].pop("shards")
    d2["spec"].pop("shards")
    assert d1 == d2


def test_transition_campaign_threads_engine():
    for engine in ALL_ENGINES:
        spec = CampaignSpec(
            model="transition",
            circuit="rdag:50,3",
            pattern_source="random",
            pattern_count=8,
            seed=2,
            atpg_engine=engine,
        )
        payload = run_campaign(spec.circuit, spec).as_dict(include_runtime=False)
        assert payload["atpg_phase"]["atpg_engine"] == engine


# --------------------------------------------------------------------------- #
# Redundancy soundness on known-redundant netlists (satellite 3).
# --------------------------------------------------------------------------- #
def constant_zero_cone():
    """``t = a AND (NOT a)`` is constant 0, so ``t`` stuck-at-0 is redundant."""
    c = LogicCircuit("constant_zero_cone")
    c.add_inputs(["a", "b"])
    c.add_output("y")
    c.add_gate("g_na", GateType.INV, ["a"], "na")
    c.add_gate("g_t", GateType.AND2, ["a", "na"], "t")
    c.add_gate("g_y", GateType.OR2, ["t", "b"], "y")
    return c, [StuckAtFault("t", 0)]


def reconvergent_identity():
    """``y = (a OR b) AND (a OR NOT b)`` collapses to ``a``: both stuck-at
    faults on ``b`` are classically redundant."""
    c = LogicCircuit("reconvergent_identity")
    c.add_inputs(["a", "b"])
    c.add_output("y")
    c.add_gate("g_nb", GateType.INV, ["b"], "nb")
    c.add_gate("g_l", GateType.OR2, ["a", "b"], "l")
    c.add_gate("g_r", GateType.OR2, ["a", "nb"], "r")
    c.add_gate("g_y", GateType.AND2, ["l", "r"], "y")
    return c, [StuckAtFault("b", 0), StuckAtFault("b", 1)]


def unobservable_stub():
    """A gate output that feeds nothing: every fault on it is redundant."""
    c = LogicCircuit("unobservable_stub")
    c.add_inputs(["a", "b"])
    c.add_output("y")
    c.add_gate("g_y", GateType.NAND2, ["a", "b"], "y")
    c.add_gate("g_dead", GateType.XOR2, ["a", "b"], "dead")
    return c, [StuckAtFault("dead", 0), StuckAtFault("dead", 1)]


REDUNDANT_NETLISTS = [constant_zero_cone, reconvergent_identity, unobservable_stub]


@pytest.mark.parametrize("build", REDUNDANT_NETLISTS, ids=lambda b: b.__name__)
def test_known_redundant_faults_are_proven_by_both_algorithms(build):
    circuit, redundant = build()
    for name in STRUCTURAL:
        engine = get_atpg_engine(name)
        for fault in redundant:
            result = engine.generate(circuit, fault, GENEROUS)
            assert result.status == PROVEN_REDUNDANT, (name, fault.key, result.status)


@pytest.mark.parametrize("build", REDUNDANT_NETLISTS, ids=lambda b: b.__name__)
@pytest.mark.parametrize("engine", STRUCTURAL)
def test_campaign_reports_structural_redundancy_provenance(build, engine):
    """With the static phase off, the proofs must come from the search:
    campaigns report the redundant faults as untestable with
    ``proven_structural`` provenance, bit-identically sharded or not."""
    circuit, redundant = build()
    spec = CampaignSpec(
        model="stuck-at",
        pattern_source="none",
        run_atpg=True,
        compact=False,
        static_phase=False,
        atpg_engine=engine,
    )
    result = Campaign(spec).run(circuit)
    payload = result.as_dict(include_runtime=False)
    atpg = payload["atpg_phase"]
    assert "static_phase" not in payload
    assert atpg["proven_static"] == 0
    assert atpg["proven_structural"] >= len(redundant)
    for fault in redundant:
        assert atpg["outcomes"][fault.key] == PROVEN_REDUNDANT
    assert atpg["untestable"] == atpg["proven_structural"]
    assert payload["coverage"]["untestable"] >= len(redundant)

    sharded = ShardedCampaign(spec, shards=2, max_workers=0).run(build()[0])
    assert sharded.as_dict(include_runtime=False) == payload


def test_static_and_structural_proofs_agree_on_redundant_netlists():
    """Every statically proven fault is also search-proven; the structural
    engines may additionally prove faults the static screens cannot."""
    for build in REDUNDANT_NETLISTS:
        circuit, _ = build()
        universe = stuck_at_universe(circuit)
        proofs = prove_stuck_at_untestable(circuit, universe)
        for name in STRUCTURAL:
            engine = get_atpg_engine(name)
            for fault in universe:
                if fault.key in proofs:
                    result = engine.generate(circuit, fault, GENEROUS)
                    assert result.status == PROVEN_REDUNDANT, (name, fault.key)


def test_structural_engines_beat_or_match_legacy_resolution():
    """At the same budget, the rewritten engines leave no more faults
    unresolved (aborted) than the legacy PODEM."""
    circuit = resolve_circuit("rdag:150,29")
    faults = collapsed_faults(circuit)
    budget = PodemOptions(max_backtracks=5_000)
    aborted = {}
    for name in ALL_ENGINES:
        engine = get_atpg_engine(name)
        aborted[name] = sum(
            1 for f in faults if engine.generate(circuit, f, budget).status == ABORTED
        )
    assert aborted["podem"] <= aborted["legacy"]
    assert aborted["d-alg"] <= aborted["legacy"]
