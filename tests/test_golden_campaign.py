"""Golden regression tests for the campaign report format.

Each case runs a fully deterministic campaign on a checked-in ``.bench``
fixture and compares ``CampaignResult.as_dict(include_runtime=False)``
byte-for-byte against a golden JSON file under ``tests/golden/``, so any
drift in the report schema, detection indices, compaction choices or fault
keys is caught immediately.  The same golden file is then asserted against
a 3-shard :class:`~repro.campaign.ShardedCampaign` run, tying the report
format to the sharded executor's determinism guarantee.

Regenerate the goldens after an *intentional* format change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_campaign.py

and commit the updated files alongside the change that caused them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.campaign import Campaign, CampaignSpec, ShardedCampaign, resolve_circuit

GOLDEN_DIR = Path(__file__).parent / "golden"
UPDATE = os.environ.get("REPRO_UPDATE_GOLDEN") == "1"

# Deterministic campaigns only: fixed seeds, no wall-clock-dependent fields
# (runtimes are excluded via include_runtime=False).  The circuit is passed
# to run() directly so the golden payload stays free of absolute paths.
CASES = {
    "c17_stuck_at_random_atpg": (
        "c17.bench",
        CampaignSpec(
            model="stuck-at",
            pattern_source="random",
            pattern_count=8,
            seed=5,
            collapse=True,
            run_atpg=True,
            compact=True,
        ),
    ),
    "c17_transition_random_drop": (
        "c17.bench",
        CampaignSpec(
            model="transition",
            pattern_source="random",
            pattern_count=6,
            seed=7,
            run_atpg=True,
            drop_detected=True,
        ),
    ),
    "c17_stuck_at_dalg_static_off": (
        "c17.bench",
        CampaignSpec(
            model="stuck-at",
            pattern_source="none",
            run_atpg=True,
            static_phase=False,
            atpg_engine="d-alg",
        ),
    ),
    "fa_sum_obd_sic": (
        "fa_sum.bench",
        CampaignSpec(
            model="obd",
            pattern_source="sic",
            run_atpg=True,
            compact=True,
        ),
    ),
    "fa_sum_path_delay_random": (
        "fa_sum.bench",
        CampaignSpec(
            model="path-delay",
            universe_options={"limit": 30},
            pattern_source="random",
            pattern_count=10,
            seed=11,
            run_atpg=True,
        ),
    ),
}


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def _payload(result) -> dict:
    # Round-trip through JSON so the comparison sees exactly what a consumer
    # of to_json() would (tuples become lists, enum values become strings).
    return json.loads(json.dumps(result.as_dict(include_runtime=False)))


@pytest.mark.parametrize("name", sorted(CASES))
def test_campaign_report_matches_golden(name):
    bench, spec = CASES[name]
    circuit = resolve_circuit(GOLDEN_DIR / bench)
    payload = _payload(Campaign(spec).run(circuit))

    path = _golden_path(name)
    if UPDATE:
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    if not path.exists():
        pytest.fail(
            f"missing golden file {path}; generate it with "
            f"REPRO_UPDATE_GOLDEN=1 and commit the result"
        )
    golden = json.loads(path.read_text(encoding="utf-8"))
    assert payload == golden, (
        f"campaign report for {name!r} drifted from {path}; if the change is "
        f"intentional, regenerate with REPRO_UPDATE_GOLDEN=1"
    )


@pytest.mark.parametrize("name", sorted(CASES))
def test_sharded_campaign_matches_golden(name):
    """Three ragged shards (inline executor) reproduce the same golden."""
    bench, spec = CASES[name]
    circuit = resolve_circuit(GOLDEN_DIR / bench)
    payload = _payload(ShardedCampaign(spec, shards=3, max_workers=0).run(circuit))
    golden = json.loads(_golden_path(name).read_text(encoding="utf-8"))
    assert payload == golden


def test_bench_fixtures_parse_to_expected_shapes():
    """The golden circuits themselves are pinned (inputs/outputs/gates)."""
    c17 = resolve_circuit(GOLDEN_DIR / "c17.bench")
    fa = resolve_circuit(GOLDEN_DIR / "fa_sum.bench")
    assert (len(c17.primary_inputs), len(c17.primary_outputs), len(c17.gates)) == (5, 2, 6)
    assert len(fa.primary_inputs) == 3
