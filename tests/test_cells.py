"""Tests for the transistor-level cell library, fixtures and characterization."""

from __future__ import annotations

import pytest

from repro.cells import (
    GateHarness,
    Technology,
    build_cell,
    build_gate_harness,
    build_inverter_dc_circuit,
    build_nand_harness,
    characterize_harness,
    default_technology,
    pin_names,
    validate_sequence,
)
from repro.logic.gates import GateType
from repro.spice import Circuit, operating_point


def _static_output(tech, cell_type, bits):
    """DC output voltage of a cell with its inputs tied to static levels."""
    c = Circuit("static")
    c.add_voltage_source("vdd", "vdd", "0", dc=tech.vdd)
    inputs = []
    for i, bit in enumerate(bits):
        node = f"in{i}"
        c.add_voltage_source(f"v{i}", node, "0", dc=tech.logic_level(bit))
        inputs.append(node)
    build_cell(c, tech, cell_type, "dut", inputs, "out")
    return operating_point(c).voltage("out")


class TestTechnology:
    def test_default_values(self):
        tech = default_technology()
        assert tech.vdd == pytest.approx(3.3)
        assert tech.nmos.polarity == "n"
        assert tech.pmos.polarity == "p"

    def test_logic_levels(self, tech):
        assert tech.logic_level(0) == 0.0
        assert tech.logic_level(1) == tech.vdd
        with pytest.raises(ValueError):
            tech.logic_level(2)

    def test_scaling(self, tech):
        scaled = tech.scaled(2.0)
        assert scaled.nmos_width == pytest.approx(2 * tech.nmos_width)
        with pytest.raises(ValueError):
            tech.scaled(0.0)

    def test_with_supply(self, tech):
        low = tech.with_supply(2.5)
        assert low.vdd == 2.5
        assert low.half_vdd == pytest.approx(1.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            Technology(vdd=-1.0)


class TestCellTruthTables:
    """Every cell's static (DC) behaviour matches its Boolean function."""

    @pytest.mark.parametrize(
        "cell_type,gate_type",
        [("INV", GateType.INV), ("NAND2", GateType.NAND2), ("NOR2", GateType.NOR2)],
    )
    def test_two_input_cells(self, tech, cell_type, gate_type):
        n = gate_type.num_inputs
        for value in range(2**n):
            bits = tuple((value >> (n - 1 - i)) & 1 for i in range(n))
            expected = gate_type.evaluate(bits)
            out = _static_output(tech, cell_type, bits)
            if expected:
                assert out > 0.9 * tech.vdd, (cell_type, bits, out)
            else:
                assert out < 0.1 * tech.vdd, (cell_type, bits, out)

    @pytest.mark.parametrize("cell_type,gate_type", [("AOI21", GateType.AOI21), ("OAI21", GateType.OAI21)])
    def test_complex_cells(self, tech, cell_type, gate_type):
        for value in range(8):
            bits = tuple((value >> (2 - i)) & 1 for i in range(3))
            expected = gate_type.evaluate(bits)
            out = _static_output(tech, cell_type, bits)
            if expected:
                assert out > 0.9 * tech.vdd
            else:
                assert out < 0.1 * tech.vdd

    def test_nand3_truth_table(self, tech):
        for value in range(8):
            bits = tuple((value >> (2 - i)) & 1 for i in range(3))
            out = _static_output(tech, "NAND3", bits)
            expected = GateType.NAND3.evaluate(bits)
            assert (out > 0.9 * tech.vdd) == bool(expected)


class TestCellStructure:
    def test_nand_sites(self, tech):
        c = Circuit("t")
        c.add_voltage_source("vdd", "vdd", "0", dc=tech.vdd)
        cell = build_cell(c, tech, "NAND2", "g1", ["a", "b"], "out")
        assert sorted(cell.sites()) == ["NA", "NB", "PA", "PB"]
        na = cell.site("NA")
        assert na.polarity == "n"
        assert na.drain == "out"

    def test_nor_series_pullup(self, tech):
        c = Circuit("t")
        c.add_voltage_source("vdd", "vdd", "0", dc=tech.vdd)
        cell = build_cell(c, tech, "NOR2", "g1", ["a", "b"], "out")
        pa = cell.site("PA")
        pb = cell.site("PB")
        assert pa.source == "vdd"
        assert pb.drain == "out"
        assert pa.drain == pb.source  # shared internal node

    def test_unknown_site_raises(self, tech):
        c = Circuit("t")
        c.add_voltage_source("vdd", "vdd", "0", dc=tech.vdd)
        cell = build_cell(c, tech, "INV", "g1", ["a"], "out")
        with pytest.raises(KeyError):
            cell.site("NB")

    def test_unknown_cell_type(self, tech):
        c = Circuit("t")
        with pytest.raises(KeyError):
            build_cell(c, tech, "XYZ", "g1", ["a"], "out")

    def test_pin_names(self):
        assert pin_names(2) == ["A", "B"]
        assert pin_names(3) == ["A", "B", "C"]
        with pytest.raises(ValueError):
            pin_names(0)

    def test_wrong_input_count(self, tech):
        c = Circuit("t")
        c.add_voltage_source("vdd", "vdd", "0", dc=tech.vdd)
        with pytest.raises(ValueError):
            build_cell(c, tech, "NAND2", "g1", ["a"], "out")


class TestHarness:
    def test_harness_structure(self, tech):
        harness = build_nand_harness(tech, ((0, 1), (1, 1)))
        assert isinstance(harness, GateHarness)
        assert harness.gate_type == GateType.NAND2
        assert harness.switching_pins == ["A"]
        assert harness.pin_edge("A") == "rising"
        assert harness.pin_edge("B") is None
        assert harness.output_edge == "falling"
        assert harness.expected_outputs == (1, 0)

    def test_harness_rising_output(self, tech):
        harness = build_nand_harness(tech, ((1, 1), (0, 1)))
        assert harness.output_edge == "rising"
        assert harness.switching_pins == ["A"]

    def test_sequence_validation(self):
        with pytest.raises(ValueError):
            validate_sequence("NAND2", ((0, 1, 1), (1, 1, 1)))
        with pytest.raises(ValueError):
            validate_sequence("NAND2", ((0, 2), (1, 1)))

    def test_harness_characterization_fault_free(self, tech):
        harness = build_nand_harness(tech, ((0, 1), (1, 1)))
        run = characterize_harness(harness, dt=8e-12)
        assert run.classification == "transition"
        assert run.delay is not None
        assert 10e-12 < run.delay < 400e-12

    def test_harness_no_output_transition(self, tech):
        harness = build_nand_harness(tech, ((0, 0), (0, 1)))
        run = characterize_harness(harness, dt=8e-12)
        assert run.measurement.classification == "no-transition-expected"

    def test_gate_harness_for_nor(self, tech):
        harness = build_gate_harness(tech, "NOR2", ((0, 0), (0, 1)))
        run = characterize_harness(harness, dt=8e-12)
        assert run.classification == "transition"

    def test_inverter_dc_circuit(self, tech):
        circuit, cell = build_inverter_dc_circuit(tech)
        assert cell.cell_type == "INV"
        op = operating_point(circuit)
        assert op.voltage("out") == pytest.approx(tech.vdd, abs=0.01)

    def test_load_stage_validation(self, tech):
        with pytest.raises(ValueError):
            build_gate_harness(tech, "NAND2", ((0, 1), (1, 1)), load_stages=0)
